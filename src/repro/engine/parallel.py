"""Partitioned parallel serving: N workers, one deterministic timeline.

An interleaved fleet pins every request to the one shard owning its
addresses, and shards never interact during a run — each has its own
queue, its own backend, its own windows.  The discrete-event simulation
therefore factors exactly: running one child
:class:`~repro.engine.core.ServiceEngine` per shard over just that shard's
arrivals produces, shard by shard, the identical events the global heap
would have interleaved.  This module exploits that factorization:

1. **Partition** — the workload is split per shard: a materialized
   :class:`~repro.engine.workload.TraceSource` is bucketed (and validated)
   up front by :func:`~repro.engine.partition.split_trace`; a
   :class:`~repro.engine.partition.PartitionedTraceSource` regenerates
   each shard's requests inside the worker that serves it, so the parent
   never materializes the trace.
2. **Serve** — partitions run in up to N ``fork``-start worker processes
   (shards round-robin over workers).  Fork means nothing is pickled on
   the way in: workers inherit the fleet — including the prewarmed
   process-wide schedule-cache registry — copy-on-write.  The partition
   granularity is *always* one engine per shard, whatever the worker
   count, so the merged output cannot depend on how many workers ran.
3. **Merge** — per-shard outcomes come back in shard order and are merged
   deterministically under the same keys the oracle's
   ``(time, PRIORITY, sequence)`` heap discipline induces on records:
   served by ``(finish_layer, query_id)``, windows by
   ``(admit_layer, shard)``, rejections by ``(time, query_id)``.  Under
   sanitizer mode the merge additionally checks that every partition's
   record streams are nondecreasing across the worker boundary and that
   per-partition conservation (``offered == served + rejected``) sums to
   the global invariant.

Determinism contract: ``workers=N`` is bit-identical to ``workers=1`` for
every partitionable configuration, and identical to the single-process
oracle (``workers=0``) under full retention — including periodic
telemetry, whose intervals are recombined per tick from raw per-shard
totals (the oracle accumulates its interval fidelity sum per shard and
both paths combine partials with an exactly-rounded ``fsum``, so the
merged intervals are byte-equal to the oracle's).  Streaming-retention
runs additionally replace the order-sensitive P² latency sketches with
the deterministic weighted merge of
:func:`repro.metrics.streaming.merge_service_aggregators`.

Worker errors propagate: the lowest-shard failure is re-raised in the
parent with its original type and message, which keeps failures
deterministic across worker counts too.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass
from itertools import chain
from typing import TYPE_CHECKING, Any

from repro.core.query import QueryRequest
from repro.engine.events import SanitizerViolation, merge_sorted_records
from repro.engine.partition import (
    ParallelRunInfo,
    PartitionedTraceSource,
    split_trace,
)
from repro.engine.pool import ForkWorkerPool, fork_available
from repro.engine.workload import StreamingTraceSource, TraceSource, WorkloadSource
from repro.metrics.service_stats import (
    RejectedQuery,
    ServedQuery,
    WindowRecord,
    summarize_service,
)
from repro.metrics.streaming import (
    IntervalStats,
    StreamingServiceAggregator,
    merge_service_aggregators,
)
from repro.perf.profiler import StageProfile
from repro.schedule_cache import default_registry

if TYPE_CHECKING:
    from repro.engine.core import ServiceEngine, ServiceReport

__all__ = ["host_clock", "run_partitioned"]

#: Host-side monotone clock used to time worker processes, or ``None``.
#: Simulation code never reads host wall time (the determinism discipline
#: simlint SIM001 enforces tree-wide), so per-worker timings are strictly
#: opt-in: a measurement harness installs a clock explicitly —
#: ``repro.engine.parallel.host_clock = time.perf_counter`` — and
#: ``ParallelRunInfo.worker_seconds`` reports zeros otherwise.  Forked
#: workers inherit the installed clock copy-on-write, so per-worker
#: elapsed times are measured inside each worker.
host_clock: Callable[[], float] | None = None

#: One interval's raw telemetry totals (see ``ServiceEngine._telemetry_raw``).
_RawInterval = tuple[float, float, int, int, int, int, int, int, int, float, int]


@dataclass
class _ShardOutcome:
    """Everything one shard's child engine observed, shipped to the parent."""

    shard: int
    offered: int
    served: list[ServedQuery]
    windows: list[WindowRecord]
    rejected: list[RejectedQuery]
    outputs: dict[int, dict[tuple[int, int], complex]]
    max_depth: int
    aggregator: StreamingServiceAggregator
    telemetry_raw: list[_RawInterval]
    profile: StageProfile | None = None


def _run_shard(
    engine: ServiceEngine,
    shard: int,
    bucket: list[QueryRequest] | None,
    partitioned: PartitionedTraceSource | None,
) -> _ShardOutcome | None:
    """Serve one shard's partition on a child engine; ``None`` when empty.

    The child drives the *full* fleet object (inherited copy-on-write
    under fork, shared in-process otherwise): only its single-shard source
    ever routes work to it, so every record naturally carries the global
    shard id and no remapping is needed anywhere.  Duplicate-id detection
    is disabled in the child — a single shard sees a sparse subsequence of
    the global id stream, which the parent (or the partitioned factory's
    strictly-increasing-id contract) already validates densely.
    """
    source: WorkloadSource
    if partitioned is not None:
        stream = partitioned.shard_requests((shard,))
        first = next(stream, None)
        if first is None:
            return None
        source = StreamingTraceSource(chain((first,), stream))
    else:
        assert bucket is not None
        source = TraceSource(bucket)
    from repro.engine.core import ServiceEngine as Engine

    child = Engine(
        engine.fleet,
        max_queue_depth=engine.max_queue_depth,
        shed_expired=engine.shed_expired,
        autoscaler=None,
        max_distillation_copies=engine.max_distillation_copies,
        retention=engine.retention,
        sample_size=engine.sample_size,
        # Disjoint per-shard reservoir seeds (each engine uses 4 streams),
        # fixed by shard — never by worker — so sampled retention is
        # worker-count invariant too.
        sample_seed=engine.sample_seed + 4 * shard,
        telemetry_interval=engine.telemetry_interval,
        sink=None,
        sanitize=engine.sanitize,
        workers=0,
        profile=engine.profile,
    )
    child._dedupe = False
    child._run_events(source)
    retained = engine.retention != "none"
    return _ShardOutcome(
        shard=shard,
        offered=child._offered,
        served=list(child._served_sink.records) if retained else [],
        windows=list(child._window_sink.records) if retained else [],
        rejected=list(child._rejected_sink.records) if retained else [],
        outputs=dict(child._outputs),
        max_depth=child._max_depth.get(shard, 0),
        aggregator=child._aggregator,
        telemetry_raw=list(child._telemetry_raw),
        profile=(
            child._profiler.snapshot() if child._profiler is not None else None
        ),
    )


class _ShardError(Exception):
    """Wraps a shard's failure so the parent can re-raise the original.

    Carries the failing shard (for the deterministic lowest-shard-first
    raise) around the original exception.  ``__reduce__`` keeps the pair
    picklable whenever the original is; an unpicklable original falls
    back to the pool's summary path.
    """

    def __init__(self, shard: int, original: BaseException) -> None:
        super().__init__(
            f"shard {shard}: {type(original).__name__}: {original}"
        )
        self.shard = shard
        self.original = original

    def __reduce__(self) -> tuple[Any, ...]:
        return (_ShardError, (self.shard, self.original))


def _run_forked(
    engine: ServiceEngine,
    groups: list[list[int]],
    buckets: list[list[QueryRequest]] | None,
    partitioned: PartitionedTraceSource | None,
) -> tuple[list[_ShardOutcome], tuple[float, ...]]:
    """Run shard groups in forked pool workers; collect outcomes and timings.

    One :class:`~repro.engine.pool.ForkWorkerPool` worker per group, one
    task per worker: the pool provides the fork-start plumbing (payload
    pipes, recv-before-join discipline, died-worker detection) this
    module used to hand-roll, and the sweep engine reuses the same pool
    for its persistent cross-run workers.
    """
    clock = host_clock

    def handler(group: list[int]) -> tuple[list[_ShardOutcome], float]:
        started = clock() if clock is not None else 0.0
        outcomes: list[_ShardOutcome] = []
        for shard in group:
            try:
                outcome = _run_shard(
                    engine,
                    shard,
                    buckets[shard] if buckets is not None else None,
                    partitioned,
                )
            except BaseException as exc:
                raise _ShardError(shard, exc) from None
            if outcome is not None:
                outcomes.append(outcome)
        elapsed = clock() - started if clock is not None else 0.0
        return outcomes, elapsed

    outcomes: list[_ShardOutcome] = []
    seconds: list[float] = []
    errors: list[tuple[int, BaseException]] = []
    with ForkWorkerPool(handler, workers=len(groups)) as pool:
        results = pool.run(
            (index, group, index) for index, group in enumerate(groups)
        )
    for result in results:
        group = groups[result.task_id]
        if result.error is None:
            group_outcomes, elapsed = result.result
            outcomes.extend(group_outcomes)
            seconds.append(elapsed)
        elif isinstance(result.error, _ShardError):
            errors.append((result.error.shard, result.error.original))
        else:
            # The worker died or the original failure would not pickle;
            # attribute it to the group's lowest shard (the first the
            # oracle would have hit).
            errors.append((min(group), result.error))
    if errors:
        # The lowest-shard error is the one the oracle would have hit
        # first (shards within a worker run in ascending order), so the
        # raised failure is deterministic across worker counts.
        errors.sort(key=lambda pair: pair[0])
        raise errors[0][1]
    return outcomes, tuple(seconds)


def _merge_telemetry(outcomes: list[_ShardOutcome]) -> list[IntervalStats]:
    """Recombine per-shard telemetry intervals on the shared tick grid.

    Every child flushes on the same ``i * interval`` grid (plus one final
    partial interval), so intervals group exactly by ``start_layer``;
    counters sum in shard order, rates and the fidelity mean are recomputed
    from the raw totals (fidelity partials via ``fsum``, matching the
    oracle's own per-shard accumulation byte-for-byte).  Queue depths are
    per-shard snapshots: the total sums over shards, the max is the
    deepest single shard — identical to the oracle's instantaneous global
    snapshot because partitioned shards never interact.
    """
    groups: dict[float, list[_RawInterval]] = {}
    for outcome in outcomes:
        for raw in outcome.telemetry_raw:
            groups.setdefault(raw[0], []).append(raw)
    intervals: list[IntervalStats] = []
    for start in sorted(groups):
        rows = groups[start]
        end = max(row[1] for row in rows)
        span = end - start
        served = sum(row[3] for row in rows)
        rejected = sum(row[4] for row in rows)
        # fsum is exactly rounded, so summing per-shard partials here gives
        # byte-for-byte the total the oracle's own fsum over its per-shard
        # accumulators produces, whatever order the rows arrived in.
        fidelity_total = math.fsum(row[9] for row in rows)
        fidelity_count = sum(row[10] for row in rows)
        intervals.append(
            IntervalStats(
                start_layer=start,
                end_layer=end,
                arrivals=sum(row[2] for row in rows),
                served=served,
                rejected=rejected,
                shed=sum(row[5] for row in rows),
                windows=sum(row[6] for row in rows),
                throughput_queries_per_layer=(
                    served / span if span > 0 else 0.0
                ),
                queue_depth_total=sum(row[7] for row in rows),
                queue_depth_max=max(row[8] for row in rows),
                rejection_rate=(
                    rejected / (served + rejected) if (served + rejected) else 0.0
                ),
                mean_fidelity=(
                    fidelity_total / fidelity_count if fidelity_count else None
                ),
            )
        )
    return intervals


def run_partitioned(
    engine: ServiceEngine,
    source: WorkloadSource,
    workers: int,
    clops: float = 1.0e6,
) -> ServiceReport:
    """Serve one partitionable workload across worker processes.

    Only called by :meth:`ServiceEngine.run` after
    :func:`~repro.engine.partition.partition_unsupported_reason` returned
    ``None``; see the module docstring for the determinism contract.
    """
    from repro.engine.core import ServiceReport as Report

    fleet = engine.fleet
    num_shards = len(fleet.shards)
    partitioned: PartitionedTraceSource | None
    buckets: list[list[QueryRequest]] | None
    if isinstance(source, PartitionedTraceSource):
        partitioned = source
        buckets = None
        jobs = list(range(num_shards))
    else:
        assert isinstance(source, TraceSource)
        partitioned = None
        buckets = split_trace(source.requests, fleet.shard_map)
        jobs = [shard for shard in range(num_shards) if buckets[shard]]

    worker_count = max(1, min(int(workers), max(1, len(jobs))))
    if worker_count > 1 and not fork_available():
        # No fork on this platform: degrade gracefully to the in-process
        # partitioned path (same partitions, same merge, same report).
        worker_count = 1

    if worker_count == 1:
        clock = host_clock
        started = clock() if clock is not None else 0.0
        maybe = [
            _run_shard(
                engine,
                shard,
                buckets[shard] if buckets is not None else None,
                partitioned,
            )
            for shard in jobs
        ]
        outcomes = [outcome for outcome in maybe if outcome is not None]
        worker_seconds = (clock() - started if clock is not None else 0.0,)
    else:
        groups = [jobs[worker::worker_count] for worker in range(worker_count)]
        outcomes, worker_seconds = _run_forked(engine, groups, buckets, partitioned)

    outcomes.sort(key=lambda outcome: outcome.shard)
    offered_total = sum(outcome.offered for outcome in outcomes)
    served_total = sum(outcome.aggregator.served_count for outcome in outcomes)
    rejected_total = sum(outcome.aggregator.rejected_count for outcome in outcomes)
    if engine.sanitize:
        for outcome in outcomes:
            part_served = outcome.aggregator.served_count
            part_rejected = outcome.aggregator.rejected_count
            if outcome.offered != part_served + part_rejected:
                raise SanitizerViolation(
                    f"partition conservation broken on shard {outcome.shard}: "
                    f"offered={outcome.offered} != served={part_served} + "
                    f"rejected={part_rejected} (queues drain by end of run)"
                )
        if offered_total != served_total + rejected_total:
            raise SanitizerViolation(
                "global conservation broken across partitions: "
                f"offered={offered_total} != served={served_total} + "
                f"rejected={rejected_total}"
            )
    if not served_total:
        if rejected_total:
            raise ValueError(
                f"no queries were served: all {rejected_total} offered requests "
                "were rejected or shed (loosen max_queue_depth / deadlines)"
            )
        raise ValueError("the workload source produced no requests")

    retained = engine.retention != "none"
    served: list[ServedQuery] = []
    windows: list[WindowRecord] = []
    rejected: list[RejectedQuery] = []
    if retained:
        served = sorted(
            (record for outcome in outcomes for record in outcome.served),
            key=lambda record: (record.finish_layer, record.query_id),
        )
        # Under full retention each partition's window / rejection stream
        # is in event order, so the k-way merge both reassembles the
        # canonical order and (in sanitizer mode) checks the streams stay
        # nondecreasing across the worker boundary.  Sampled retention
        # keeps reservoirs, whose records carry no order — plain canonical
        # sorts apply.
        checked = engine.retention == "full"
        windows = merge_sorted_records(
            [outcome.windows for outcome in outcomes],
            key=lambda record: (record.admit_layer, record.shard),
            sanitize=engine.sanitize and checked,
            description="window",
        )
        if not checked:
            windows.sort(key=lambda record: (record.admit_layer, record.shard))
        rejected = merge_sorted_records(
            [outcome.rejected for outcome in outcomes],
            key=lambda record: record.time,
            sanitize=engine.sanitize and checked,
            description="rejection",
        )
        rejected.sort(key=lambda record: (record.time, record.query_id))

    outputs: dict[int, dict[tuple[int, int], complex]] = {}
    for outcome in outcomes:
        outputs.update(outcome.outputs)
    max_depth = {shard: 0 for shard in range(num_shards)}
    for outcome in outcomes:
        max_depth[outcome.shard] = outcome.max_depth

    if engine.retention == "full":
        stats = summarize_service(
            served, windows, max_depth, clops=clops, rejected=rejected
        )
    else:
        merged = merge_service_aggregators(
            [outcome.aggregator for outcome in outcomes]
        )
        stats = merged.to_stats(max_depth, clops=clops)

    telemetry = (
        _merge_telemetry(outcomes)
        if engine.telemetry_interval is not None
        else []
    )
    profile: StageProfile | None = None
    if engine.profile:
        profile = StageProfile()
        for outcome in outcomes:
            if outcome.profile is not None:
                profile = profile.merged(outcome.profile)
    return Report(
        served=served,
        windows=windows,
        stats=stats,
        outputs=outputs,
        rejected=rejected,
        scale_events=[],
        telemetry=telemetry,
        retention=engine.retention,
        parallel=ParallelRunInfo(
            workers=worker_count,
            partitions=len(outcomes),
            fallback_reason=None,
            worker_seconds=worker_seconds,
        ),
        profile=profile,
        # The parent's registry snapshot: forked workers' serve-time
        # lookups land in their own copy-on-write registries, so this
        # reflects the shared table the workers inherited (fleet-build
        # prewarms included), not per-worker hit traffic.
        cache_stats=default_registry().stats(),
    )
