"""Discrete-event serving engine: the one place virtual time advances.

* :mod:`repro.engine.events` — typed events (:class:`Arrival`,
  :class:`WindowStart`, :class:`WindowDrain`, :class:`ClientThink`,
  :class:`ScaleCheck`) and the virtual-time :class:`EventHeap`.
* :mod:`repro.engine.workload` — the :class:`WorkloadSource` interface
  unifying open-loop traces (:class:`TraceSource`, lazily via
  :class:`StreamingTraceSource`) and closed-loop think-time clients
  (:class:`ClosedLoopSource`).
* :mod:`repro.engine.core` — :class:`ServiceEngine` (SLO-aware admission,
  backpressure, elastic fleets, record retention modes and periodic
  telemetry) and the :class:`ServiceReport` it returns.
* :mod:`repro.engine.partition` / :mod:`repro.engine.parallel` —
  partitioned parallel serving: ``ServiceEngine(workers=N)`` shards the
  fleet across forked worker processes and merges the events back
  deterministically (bit-identical reports across worker counts);
  :class:`PartitionedTraceSource` lets each worker regenerate just its
  partition of a lazy trace.

:meth:`repro.service.QRAMService.serve` is a thin wrapper over this engine;
richer scenarios go through :meth:`~repro.service.QRAMService.serve_workload`.
"""

from repro.engine.core import (
    RETENTIONS,
    SANITIZE_ENV,
    WORKERS_ENV,
    AutoscalerConfig,
    ServiceEngine,
    ServiceReport,
)
from repro.engine.events import (
    Arrival,
    ClientThink,
    Event,
    EventHeap,
    SanitizerViolation,
    ScaleCheck,
    TelemetryTick,
    WindowDrain,
    WindowStart,
    merge_sorted_records,
)
from repro.engine.partition import (
    ParallelRunInfo,
    PartitionedTraceSource,
    partition_shards,
    partition_unsupported_reason,
)
from repro.engine.workload import (
    ClosedLoopClient,
    ClosedLoopSource,
    StreamingTraceSource,
    TraceSource,
    WorkloadSource,
)

__all__ = [
    "ServiceEngine",
    "ServiceReport",
    "AutoscalerConfig",
    "RETENTIONS",
    "WorkloadSource",
    "TraceSource",
    "StreamingTraceSource",
    "ClosedLoopClient",
    "ClosedLoopSource",
    "EventHeap",
    "Event",
    "Arrival",
    "ClientThink",
    "WindowStart",
    "WindowDrain",
    "ScaleCheck",
    "TelemetryTick",
    "SanitizerViolation",
    "SANITIZE_ENV",
    "WORKERS_ENV",
    "ParallelRunInfo",
    "PartitionedTraceSource",
    "partition_shards",
    "partition_unsupported_reason",
    "merge_sorted_records",
]
