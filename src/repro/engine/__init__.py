"""Discrete-event serving engine: the one place virtual time advances.

* :mod:`repro.engine.events` — typed events (:class:`Arrival`,
  :class:`WindowStart`, :class:`WindowDrain`, :class:`ClientThink`,
  :class:`ScaleCheck`) and the virtual-time :class:`EventHeap`.
* :mod:`repro.engine.workload` — the :class:`WorkloadSource` interface
  unifying open-loop traces (:class:`TraceSource`) and closed-loop
  think-time clients (:class:`ClosedLoopSource`).
* :mod:`repro.engine.core` — :class:`ServiceEngine` (SLO-aware admission,
  backpressure, elastic fleets) and the :class:`ServiceReport` it returns.

:meth:`repro.service.QRAMService.serve` is a thin wrapper over this engine;
richer scenarios go through :meth:`~repro.service.QRAMService.serve_workload`.
"""

from repro.engine.core import AutoscalerConfig, ServiceEngine, ServiceReport
from repro.engine.events import (
    Arrival,
    ClientThink,
    Event,
    EventHeap,
    ScaleCheck,
    WindowDrain,
    WindowStart,
)
from repro.engine.workload import (
    ClosedLoopClient,
    ClosedLoopSource,
    TraceSource,
    WorkloadSource,
)

__all__ = [
    "ServiceEngine",
    "ServiceReport",
    "AutoscalerConfig",
    "WorkloadSource",
    "TraceSource",
    "ClosedLoopClient",
    "ClosedLoopSource",
    "EventHeap",
    "Event",
    "Arrival",
    "ClientThink",
    "WindowStart",
    "WindowDrain",
    "ScaleCheck",
]
