"""The discrete-event serving engine: one virtual clock for every scenario.

:class:`ServiceEngine` drives a fleet of QRAM backends (any object with the
:class:`repro.service.QRAMService` surface — shards, shard map, admission
policy, window sizes) through a heap of typed events
(:mod:`repro.engine.events`).  Time advances only here: arrivals enqueue,
idle shards admit pipeline windows, draining windows free their shard, and
optional :class:`ScaleCheck` ticks grow or shrink a replicated fleet.  New
serving scenarios are new event types or new
:class:`~repro.engine.workload.WorkloadSource` implementations — never a
new hand-rolled loop.

On top of the bare event loop the engine adds the serving disciplines a
shared memory under live contention needs:

* **closed-loop clients** — a :class:`~repro.engine.workload.ClosedLoopSource`
  issues each client's next request only after its previous completion
  (think-time feedback), while :class:`~repro.engine.workload.TraceSource`
  replays open-loop traces bit-for-bit like the legacy
  ``QRAMService.serve`` loop and
  :class:`~repro.engine.workload.StreamingTraceSource` pulls a lazy trace
  one arrival at a time;
* **SLO-aware admission** — per-request deadlines (EDF ordering via
  ``policy="edf"``), bounded per-shard queues that reject on overflow, and
  optional shedding of queued requests whose deadline already expired, all
  surfaced in :class:`repro.metrics.service_stats.ServiceStats`;
* **fidelity-aware admission** — per-request ``min_fidelity`` targets
  checked against every backend's *predicted* slot fidelity
  (:mod:`repro.backends.noise`): replicated placement prefers a shard that
  can meet the target (an encoded replica in a mixed fleet), infeasible
  requests are refused with :data:`REJECT_FIDELITY`, an optional
  virtual-distillation retry spends up to ``max_distillation_copies``
  parallel copies (Sec. 8.2) to lift a shard over the target with the
  copies' layer cost charged to the window, and batches are capped so
  pipelining-depth degradation never drags an admitted slot below its SLO
  (predictions are memoized per ``(shard, occupancy)`` — the hot path
  never re-derives them);
* **elastic fleets** — an :class:`AutoscalerConfig` adds or retires
  full-memory replicas (built through
  :func:`repro.baselines.registry.build_backend`; encoded variants by
  ``"<architecture>@d<k>"`` name) from queue-depth watermarks, rebalancing
  queued work onto fresh replicas;
* **streaming telemetry** — every served / rejected / window / scale
  record flows through a :class:`~repro.metrics.sinks.RecordSink` chosen
  by the engine's ``retention`` mode *and* the online
  :class:`~repro.metrics.streaming.StreamingServiceAggregator`, so
  ``retention="none"`` serves million-query workloads in memory
  independent of request count while still reporting full
  :class:`~repro.metrics.service_stats.ServiceStats`; a periodic
  :class:`TelemetryTick` emits time-windowed
  :class:`~repro.metrics.streaming.IntervalStats` (throughput, queue
  depths, rejection rates, fidelity) so long runs expose a time series.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Any

from repro.baselines.registry import build_backend
from repro.core.query import ANY_SHARD, QueryRequest
from repro.engine.events import (
    Arrival,
    ClientThink,
    EventHeap,
    SanitizerViolation,
    ScaleCheck,
    TelemetryTick,
    WindowDrain,
    WindowStart,
)
from repro.engine.partition import ParallelRunInfo, partition_unsupported_reason
from repro.engine.workload import WorkloadSource
from repro.fidelity.distillation import distilled_infidelity
from repro.metrics.service_stats import (
    REJECT_DEADLINE_EXPIRED,
    REJECT_FIDELITY,
    REJECT_QUEUE_FULL,
    RejectedQuery,
    ScaleEvent,
    ServedQuery,
    ServiceStats,
    WindowRecord,
    summarize_service,
)
from repro.metrics.sinks import ListSink, NullSink, RecordSink, SamplingSink
from repro.metrics.streaming import IntervalStats, StreamingServiceAggregator
from repro.perf.profiler import HotPathProfiler, StageProfile, env_profile
from repro.schedule_cache import CacheStats, default_registry

#: Retention modes for the engine's per-request records.
RETENTIONS = ("full", "sampled", "none")

#: Environment switch for sanitizer mode (CI runs the whole suite with it).
SANITIZE_ENV = "REPRO_SANITIZE"

#: Environment default for partitioned parallel serving.  Applied only to
#: runs whose parallel output is provably identical to the single-process
#: oracle (full retention, no telemetry interval, no external sink, and a
#: partitionable fleet/source); everything else falls back silently.  An
#: explicit ``ServiceEngine(workers=...)`` always wins over the variable.
WORKERS_ENV = "REPRO_WORKERS"


def _env_sanitize() -> bool:
    """Default sanitizer setting from the ``REPRO_SANITIZE`` variable."""
    return os.environ.get(SANITIZE_ENV, "").strip().lower() in (
        "1",
        "true",
        "yes",
        "on",
    )


def _env_workers() -> int | None:
    """Default worker count from the ``REPRO_WORKERS`` variable."""
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value >= 1 else None


#: (stage name, engine method) pairs wrapped when profiling.  ``run_window``
#: and ``heap_pop`` / ``heap_push`` are attributed separately inside
#: ``_execute_window`` / ``_run_events``.
_PROFILED_STAGES: tuple[tuple[str, str], ...] = (
    ("admission", "_on_arrival"),
    ("placement", "_shortest_queue"),
    ("fidelity_prediction", "_predicted_fidelities"),
    ("window_execute", "_execute_window"),
    ("sketch_update", "_record_served"),
    ("sketch_update_window", "_record_window"),
    ("sketch_update_rejected", "_record_rejected"),
)


def _distilled(fidelity: float, copies: int) -> float:
    """Predicted fidelity after virtual distillation with ``copies`` copies
    (identity at 1 copy; the paper's leading-order ``eps^k`` suppression).

    Measured functional fidelities are state overlaps — mathematically in
    [0, 1] but computed with floats, so a perfect slot can come back as
    ``1.0 + O(eps)``.  Clamp the implied infidelity into range rather than
    letting :func:`distilled_infidelity` reject the rounding artifact.
    """
    if copies <= 1:
        return fidelity
    infidelity = min(1.0, max(0.0, 1.0 - fidelity))
    return 1.0 - distilled_infidelity(infidelity, copies)


class _SeenIds:
    """Exact duplicate detection that stays O(1) for monotone id streams.

    The engine must refuse duplicate query ids, but a plain ``set`` grows
    with the request count — the one bookkeeping structure that would
    break bounded-memory serving.  Generators assign ids ``0, 1, 2, ...``
    in arrival order, so this tracker keeps a *contiguous-prefix
    watermark* (every id in ``[0, watermark]`` seen) plus a sparse
    overflow set that drains back into the watermark as gaps fill.  For
    the monotone streams every trace and closed-loop source produces, the
    overflow set stays empty; arbitrary (sparse or out-of-order) ids
    remain correct and merely fall back to set behaviour.
    """

    __slots__ = ("_watermark", "_sparse")

    def __init__(self) -> None:
        self._watermark = -1
        self._sparse: set[int] = set()

    def add(self, query_id: int) -> bool:
        """Record one id; True when it was already seen."""
        if 0 <= query_id <= self._watermark or query_id in self._sparse:
            return True
        self._sparse.add(query_id)
        while self._watermark + 1 in self._sparse:
            self._watermark += 1
            self._sparse.discard(self._watermark)
        return False

    def __len__(self) -> int:
        return (self._watermark + 1) + len(self._sparse)


@dataclass(frozen=True)
class AutoscalerConfig:
    """Queue-depth-watermark autoscaling of a replicated fleet.

    Every ``period`` layers the engine inspects the deepest active queue:
    at or above ``high_watermark`` it adds one full-memory replica (up to
    ``max_shards``) and rebalances queued requests onto it; at or below
    ``low_watermark`` it retires one idle, empty replica (down to
    ``min_shards``).  Only ``"shortest-queue"`` placement can scale — an
    interleaved fleet partitions the address space and cannot change shard
    count without resharding.

    Attributes:
        period: raw layers between scale checks.
        high_watermark: per-shard queue depth that triggers scale-up.
        low_watermark: per-shard queue depth that permits scale-down.
        min_shards: floor on active replicas.
        max_shards: ceiling on active replicas.
        architecture: backend architecture for new replicas (defaults to
            the fleet's first shard's architecture).
    """

    period: float
    high_watermark: int
    low_watermark: int = 0
    min_shards: int = 1
    max_shards: int = 8
    architecture: str | None = None

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")
        if self.low_watermark < 0 or self.high_watermark <= self.low_watermark:
            raise ValueError("need high_watermark > low_watermark >= 0")
        if not 1 <= self.min_shards <= self.max_shards:
            raise ValueError("need 1 <= min_shards <= max_shards")


@dataclass
class ServiceReport:
    """Everything the engine observed while serving one workload.

    Attributes:
        served: completed-query records, in completion order — every one
            under ``retention="full"``, a uniform reservoir sample under
            ``"sampled"``, empty under ``"none"`` (``stats`` always covers
            the whole run).
        windows: executed pipeline windows (retained per the same mode).
        stats: aggregated per-tenant / per-shard / per-backend statistics —
            the exact batch summary under full retention, the streaming
            aggregates (exact counts and means, sketched percentiles)
            otherwise.
        outputs: per-query output amplitudes over global ``(address, bus)``
            pairs (populated only on functional runs under full retention).
        rejected: requests refused by backpressure or shed past deadline
            (retained per the retention mode).
        scale_events: elastic-fleet transitions taken by the autoscaler
            (retained per the retention mode, like every record stream).
        telemetry: time-windowed interval samples, one per
            :class:`~repro.engine.events.TelemetryTick` (empty unless the
            engine was given a ``telemetry_interval``).
        retention: the retention mode the run used.
        parallel: how the run was parallelized (or why it was not) when
            partitioned serving was requested; ``None`` on a plain
            single-process run.  Excluded from equality — the whole point
            of the parallel path is that reports compare equal across
            worker counts.
        profile: the hot-path stage-time table
            (:class:`~repro.perf.profiler.StageProfile`) when the engine
            ran with ``profile=True`` / ``REPRO_PROFILE=1``; ``None``
            otherwise.  Excluded from equality like ``parallel`` —
            profiling is observational and must never make two otherwise
            identical reports differ.
        cache_stats: snapshot of the process-wide
            :class:`~repro.schedule_cache.ScheduleCacheRegistry` counters
            taken when the report was built, so per-run cache hit-rates
            are observable outside benchmarks (printed next to the
            ``REPRO_PROFILE=1`` stage table).  Counters are process-wide
            and monotone — compare two snapshots with
            :meth:`~repro.schedule_cache.CacheStats.delta`.  Excluded
            from equality like ``parallel``: cache warmth affects speed,
            never results.
    """

    served: list[ServedQuery]
    windows: list[WindowRecord]
    stats: ServiceStats
    outputs: dict[int, dict[tuple[int, int], complex]] = field(default_factory=dict)
    rejected: list[RejectedQuery] = field(default_factory=list)
    scale_events: list[ScaleEvent] = field(default_factory=list)
    telemetry: list[IntervalStats] = field(default_factory=list)
    retention: str = "full"
    parallel: ParallelRunInfo | None = field(
        default=None, repr=False, compare=False
    )
    profile: StageProfile | None = field(default=None, repr=False, compare=False)
    cache_stats: CacheStats | None = field(
        default=None, repr=False, compare=False
    )
    _result_index: dict[int, ServedQuery] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def result_for(self, query_id: int) -> ServedQuery:
        """The served record of one query id (O(1) after the first call).

        Only retained records are indexed: under ``retention="sampled"`` /
        ``"none"`` a completed query may raise ``KeyError`` here even
        though it is counted in ``stats``.
        """
        if self._result_index is None:
            self._result_index = {r.query_id: r for r in self.served}
        try:
            return self._result_index[query_id]
        except KeyError:
            raise KeyError(query_id) from None


class ServiceEngine:
    """Discrete-event simulation of a QRAM backend fleet serving traffic.

    Args:
        fleet: the fleet to drive — typically a
            :class:`repro.service.QRAMService`; any object exposing
            ``shards``, ``shard_map``, ``policy``, ``window_sizes``,
            ``functional`` and ``placement`` works.
        max_queue_depth: bound on every per-shard queue; arrivals that find
            their queue full are rejected (backpressure).  ``None``
            disables the bound.
        shed_expired: when True, queued requests that can no longer finish
            by their deadline (``deadline <= now`` — any execution takes at
            least one layer) are shed (never executed) at the next window
            admission on their shard.
        autoscaler: elastic-fleet configuration; requires
            ``placement="shortest-queue"``.
        max_distillation_copies: most parallel copies the engine may spend
            per query on virtual distillation (Sec. 8.2) to reach the
            query's ``min_fidelity``; each extra copy consumes one window
            slot and one admission interval of backend time.  1 disables
            the retry.
        retention: what happens to the per-request records —
            ``"full"`` keeps every record and reproduces the historical
            batch :class:`ServiceStats` byte for byte; ``"sampled"`` keeps
            a fixed-size uniform reservoir (``sample_size`` per stream)
            and reports the streaming aggregates; ``"none"`` keeps no
            records at all, serving any request count in bounded memory.
        sample_size: reservoir capacity per record stream under
            ``retention="sampled"``.
        sample_seed: RNG seed of the reservoir sampler.
        telemetry_interval: when set, emit one
            :class:`~repro.metrics.streaming.IntervalStats` every this
            many raw layers (the report's ``telemetry`` time series).
        sink: optional extra :class:`~repro.metrics.sinks.RecordSink` that
            receives *every* served / rejected / window / scale record
            regardless of retention — e.g. a
            :class:`~repro.metrics.sinks.JsonlSink` for durable full
            telemetry next to a bounded-memory run.
        workers: partitioned parallel serving.  ``N >= 1`` partitions the
            fleet per shard, serves the partitions in up to ``N`` forked
            worker processes and merges the events back deterministically
            — the report is bit-identical to ``workers=1``, and on the
            configurations :mod:`repro.engine.partition` can prove
            independent, identical to the single-process oracle.
            Unpartitionable runs (replicated placement, autoscaling,
            closed-loop sources, shared-RNG policies, external sinks)
            fall back to the oracle with the reason recorded on
            ``report.parallel``.  ``0`` forces the single-process oracle;
            ``None`` (default) reads the ``REPRO_WORKERS`` environment
            variable, which only ever parallelizes provably
            oracle-identical configurations.
        sanitize: runtime invariant checking.  When True every run asserts
            clock monotonicity, nondecreasing heap-key order, that windows
            only start on idle shards, and the conservation invariant
            ``offered == served + rejected + queued`` at every window
            drain (queues empty at end of run); violations raise
            :class:`~repro.engine.events.SanitizerViolation`.  ``None``
            (the default) reads the ``REPRO_SANITIZE`` environment
            variable, which is how CI runs the whole test suite
            sanitized.
        profile: hot-path stage profiling.  When True the run attributes
            per-stage invocation counts (and wall seconds, when a host
            clock is injected into :mod:`repro.perf.profiler`) to the
            named engine stages and lands the table on the report's
            ``profile`` field.  Profiling is observational: the report is
            otherwise identical to an unprofiled run.  ``None`` (the
            default) reads the ``REPRO_PROFILE`` environment variable.

    Engines are reusable: ``run`` resets all per-run state (queues, seen
    ids, busy times, telemetry, caches) on entry, so consecutive runs of
    the same engine are independent and identical given identical
    workloads.
    """

    def __init__(
        self,
        # Duck-typed on purpose (see the docstring): a QRAMService or any
        # object with the same shards/shard_map/policy/placement surface.
        fleet: Any,
        *,
        max_queue_depth: int | None = None,
        shed_expired: bool = False,
        autoscaler: AutoscalerConfig | None = None,
        max_distillation_copies: int = 1,
        retention: str = "full",
        sample_size: int = 1024,
        sample_seed: int = 0,
        telemetry_interval: float | None = None,
        sink: RecordSink | None = None,
        sanitize: bool | None = None,
        workers: int | None = None,
        profile: bool | None = None,
    ) -> None:
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if workers is not None and workers < 0:
            raise ValueError("workers must be >= 0")
        if max_distillation_copies < 1:
            raise ValueError("max_distillation_copies must be >= 1")
        if retention not in RETENTIONS:
            raise ValueError(
                f"unknown retention {retention!r}; expected one of {RETENTIONS}"
            )
        if sample_size < 1:
            raise ValueError("sample_size must be >= 1")
        if telemetry_interval is not None and telemetry_interval <= 0:
            raise ValueError("telemetry_interval must be positive")
        if autoscaler is not None:
            placement = getattr(fleet, "placement", None)
            if placement != "shortest-queue":
                raise ValueError(
                    "autoscaling requires shortest-queue placement (replicated "
                    f"shards); the fleet uses {placement!r}"
                )
            if not autoscaler.min_shards <= len(fleet.shards) <= autoscaler.max_shards:
                raise ValueError(
                    f"the fleet starts with {len(fleet.shards)} shard(s), "
                    f"outside the autoscaler's [{autoscaler.min_shards}, "
                    f"{autoscaler.max_shards}] bounds"
                )
        self.fleet = fleet
        self.max_queue_depth = max_queue_depth
        self.shed_expired = shed_expired
        self.autoscaler = autoscaler
        self.max_distillation_copies = max_distillation_copies
        self.retention = retention
        self.sample_size = sample_size
        self.sample_seed = sample_seed
        self.telemetry_interval = telemetry_interval
        self.sink = sink
        self.sanitize = _env_sanitize() if sanitize is None else bool(sanitize)
        self.workers = workers
        self.profile = env_profile() if profile is None else bool(profile)
        # Names of the methods the *previous* run's profiler wrapped (see
        # ``_reset``); only these are unwound, never unrelated overrides.
        self._profiled_wrapped: tuple[str, ...] = ()
        # Child engines in parallel workers see a single shard's sparse id
        # stream, which would blow the contiguous-prefix watermark of
        # _SeenIds into a set; the parent validates the full dense stream
        # instead and disables per-child dedup.
        self._dedupe = True

    # ------------------------------------------------------------------ run
    def _make_sink(self, stream: int) -> RecordSink:
        """One per-run record sink for the engine's retention mode."""
        if self.retention == "full":
            return ListSink()
        if self.retention == "sampled":
            # Offset the seed per stream so the served / window / rejected
            # reservoirs draw independent samples.
            return SamplingSink(self.sample_size, seed=self.sample_seed + stream)
        return NullSink()

    def _reset(self, source: WorkloadSource) -> None:
        """(Re)initialize every piece of per-run state.

        Called at the top of every ``run``, which makes engines reusable:
        nothing from a previous run — seen ids, queues, busy times, scaled
        replicas, caches, telemetry — leaks into the next.
        """
        fleet = self.fleet
        self._source = source
        self._heap = EventHeap(sanitize=self.sanitize)
        self._offered = 0
        self._backends = list(fleet.shards)
        self._window_sizes = list(fleet.window_sizes)
        num_shards = len(self._backends)
        self._queues: list[list[QueryRequest]] = [[] for _ in range(num_shards)]
        self._busy_until = [0.0] * num_shards
        self._window_pending = [False] * num_shards
        self._active = [True] * num_shards
        self._max_depth = {shard: 0 for shard in range(num_shards)}
        self._seen_ids = _SeenIds()
        self._local_amps: dict[int, dict[int, complex]] = {}
        self._copies: dict[int, int] = {}
        self._outputs: dict[int, dict[tuple[int, int], complex]] = {}
        # Read once per run: the hot path branches on these every event.
        self._functional = bool(fleet.functional)
        # Whether any admitted request carried a fidelity SLO this run.
        # Gates the per-window SLO re-validation and batch capping — both
        # no-ops (and re-derivable from the queue) while this is False.
        self._slo_seen = False
        # Frozen per-shard events are reusable singletons: one WindowStart
        # / WindowDrain per shard and one ClientThink per client serve the
        # whole run instead of one allocation per event.
        self._start_events = [WindowStart(shard) for shard in range(num_shards)]
        self._drain_events = [WindowDrain(shard) for shard in range(num_shards)]
        self._think_events: dict[int, ClientThink] = {}
        # The observation path: per-stream sinks + the online aggregates.
        self._served_sink = self._make_sink(0)
        self._window_sink = self._make_sink(1)
        self._rejected_sink = self._make_sink(2)
        self._scale_sink = self._make_sink(3)
        self._aggregator = StreamingServiceAggregator()
        # Traffic events (arrivals / thinks / window starts / drains) still
        # in the heap — the liveness signal recurring ticks (ScaleCheck,
        # TelemetryTick) use to decide whether to reschedule without
        # keeping each other alive forever.
        self._traffic_events = 0
        # Telemetry interval accumulators.  The raw tuples mirror the
        # emitted IntervalStats counters (start, end, arrivals, served,
        # rejected, shed, windows, depth_total, depth_max, fidelity_total,
        # fidelity_count): the parallel merge recombines partitions'
        # intervals from these totals, which plain IntervalStats cannot
        # provide (mean_fidelity loses its count).
        self._telemetry: list[IntervalStats] = []
        self._telemetry_raw: list[
            tuple[float, float, int, int, int, int, int, int, int, float, int]
        ] = []
        self._tick_start = 0.0
        self._tick_arrivals = 0
        self._tick_served = 0
        self._tick_rejected = 0
        self._tick_shed = 0
        self._tick_windows = 0
        # Per-shard partial sums, combined with an exactly-rounded fsum at
        # flush time: a partitioned run accumulates each shard's fidelities
        # on its own child engine, so a global left-to-right += would make
        # the oracle's interval mean differ from the merge in the last bit
        # (float addition is not associative).  fsum over identical
        # per-shard partials is order-independent, so both paths agree
        # byte-for-byte.
        self._tick_fidelity_totals: dict[int, float] = {}
        self._tick_fidelity_count = 0
        self._now = 0.0
        # Profiling wraps bound methods in per-stage counters.  The
        # wrappers live in the instance __dict__, so exactly the ones a
        # previous run installed are dropped first — engines are reusable
        # and a second profiled run must not double-wrap the first run's
        # wrappers (and an unrelated instance-level override, e.g. a test
        # stub, must survive untouched).
        for name in self._profiled_wrapped:
            self.__dict__.pop(name, None)
        self._profiled_wrapped = ()
        self._profiler: HotPathProfiler | None = None
        if self.profile:
            profiler = HotPathProfiler()
            self._profiler = profiler
            for stage, name in _PROFILED_STAGES:
                setattr(self, name, profiler.timed(stage, getattr(self, name)))
            self._profiled_wrapped = tuple(
                name for _, name in _PROFILED_STAGES
            )
            self._heap.push = profiler.timed(  # type: ignore[method-assign]
                "heap_push", self._heap.push
            )

    def run(self, source: WorkloadSource, clops: float = 1.0e6) -> ServiceReport:
        """Serve one workload to completion and report what happened.

        With ``workers`` set (or ``REPRO_WORKERS`` on a provably
        oracle-identical configuration) the run is dispatched to the
        partitioned parallel path of :mod:`repro.engine.parallel`; any
        configuration that cannot be partitioned exactly falls back to
        this single-process oracle with the reason recorded on the
        report's ``parallel`` field.

        Args:
            source: the traffic (open-loop trace — materialized or
                streaming — or closed-loop clients).
            clops: hardware clock used for the queries-per-second numbers.
        """
        requested = self.workers
        if requested is None:
            env = _env_workers()
            if (
                env is not None
                and self.retention == "full"
                and self.telemetry_interval is None
                and self.sink is None
            ):
                requested = env
        parallel_info: ParallelRunInfo | None = None
        if requested is not None and requested >= 1:
            reason = partition_unsupported_reason(self, source)
            if reason is None:
                # Imported lazily: the parallel module builds child
                # ServiceEngines, so the import must not be circular at
                # module load.
                from repro.engine.parallel import run_partitioned

                return run_partitioned(self, source, requested, clops)
            parallel_info = ParallelRunInfo(
                workers=0,
                partitions=0,
                fallback_reason=reason,
                worker_seconds=(),
            )
        self._run_events(source)
        return self._finalize(clops, parallel_info)

    def _run_events(self, source: WorkloadSource) -> None:
        """Drain one workload's event heap to empty (the oracle loop).

        Resets all per-run state, runs every event, flushes trailing
        telemetry and performs the end-of-run sanitizer checks — but does
        not build the report: parallel workers run exactly this on their
        partition and ship the raw state back for the deterministic merge.
        """
        self._reset(source)
        source.start(self)
        if self.autoscaler is not None:
            self._heap.push(self.autoscaler.period, ScaleCheck())
        if self.telemetry_interval is not None:
            self._heap.push(self.telemetry_interval, TelemetryTick())

        # The drain loop is the innermost hot loop of every run: bind the
        # heap and its pop once, branch on exact event classes (events are
        # final dataclasses, ordered here by serving frequency), and keep
        # the sanitizer check behind one cached flag.
        heap = self._heap
        pop = heap.pop
        if self._profiler is not None:
            pop = self._profiler.timed("heap_pop", pop)
        sanitize = self.sanitize
        while heap:
            now, event = pop()
            cls = event.__class__
            if sanitize:
                if now < self._now:
                    raise SanitizerViolation(
                        f"virtual clock moved backwards: popped "
                        f"{cls.__name__} at {now} after {self._now}"
                    )
                if cls is WindowDrain:
                    self._check_conservation(now)
            self._now = now
            if cls is ClientThink:
                self._traffic_events -= 1
                request = source.next_request(event.client_id, now)
                if request is not None:
                    self._on_arrival(now, request)
            elif cls is Arrival:
                self._traffic_events -= 1
                self._on_arrival(now, event.request)
            elif cls is WindowDrain:
                self._traffic_events -= 1
                self._maybe_start(event.shard, now)
            elif cls is WindowStart:
                self._traffic_events -= 1
                self._on_window_start(now, event.shard)
            elif cls is ScaleCheck:
                self._on_scale_check(now)
            elif cls is TelemetryTick:
                self._on_telemetry_tick(now)

        if self.telemetry_interval is not None and (
            self._tick_arrivals
            or self._tick_served
            or self._tick_rejected
            or self._tick_windows
        ):
            # Safety net: a tick reschedules while work remains, so by
            # construction nothing countable happens after the final tick
            # — but if that invariant ever breaks, flush the activity
            # rather than lose it.  Time alone (e.g. a trailing ScaleCheck
            # popping after the last tick) does not warrant an extra
            # all-zero interval off the tick grid.
            self._flush_interval(max(self._now, self._tick_start))
        if self.sanitize:
            queued = sum(len(queue) for queue in self._queues)
            if queued:
                raise SanitizerViolation(
                    f"run ended with {queued} request(s) still queued"
                )
            self._check_conservation(self._now)

    def _finalize(
        self, clops: float, parallel_info: ParallelRunInfo | None = None
    ) -> ServiceReport:
        """Build the report from the drained engine state.

        Record lists are put in canonical order — served by
        ``(finish_layer, query_id)``, windows by ``(admit_layer, shard)``,
        rejections by ``(time, query_id)`` — the same order the parallel
        merge reconstructs, so a partitioned report can be compared to the
        oracle field by field.
        """
        served_count = self._aggregator.served_count
        if not served_count:
            offered = self._aggregator.rejected_count
            if offered:
                raise ValueError(
                    f"no queries were served: all {offered} offered requests "
                    "were rejected or shed (loosen max_queue_depth / deadlines)"
                )
            raise ValueError("the workload source produced no requests")

        served = list(self._served_sink.records) if self.retention != "none" else []
        served.sort(key=lambda s: (s.finish_layer, s.query_id))
        windows = list(self._window_sink.records) if self.retention != "none" else []
        windows.sort(key=lambda w: (w.admit_layer, w.shard))
        rejected = (
            list(self._rejected_sink.records) if self.retention != "none" else []
        )
        rejected.sort(key=lambda r: (r.time, r.query_id))
        scale_events = (
            list(self._scale_sink.records) if self.retention != "none" else []
        )
        if self.retention == "full":
            # The historical batch path, byte for byte: aggregate the
            # complete record lists exactly as the legacy engine did.
            stats = summarize_service(
                served,
                windows,
                self._max_depth,
                clops=clops,
                rejected=rejected,
            )
        else:
            stats = self._aggregator.to_stats(self._max_depth, clops=clops)
        return ServiceReport(
            served=served,
            windows=windows,
            stats=stats,
            outputs=self._outputs,
            rejected=rejected,
            scale_events=scale_events,
            telemetry=self._telemetry,
            retention=self.retention,
            parallel=parallel_info,
            profile=(
                self._profiler.snapshot() if self._profiler is not None else None
            ),
            cache_stats=default_registry().stats(),
        )

    # ----------------------------------------------- source-facing scheduling
    def submit(self, request: QueryRequest) -> None:
        """Schedule one request's arrival at its ``request_time``.

        The arrival clock starts at 0: a negative ``request_time`` is
        refused here (it would silently inflate every latency and
        queue-delay statistic derived from it).  Validation of amplitudes
        and duplicate ids happens when the arrival is processed — the one
        path every request takes, trace or closed-loop.
        """
        if request.request_time < 0:
            raise ValueError(
                f"request {request.query_id} has negative request_time "
                f"{request.request_time}; arrivals must be at time >= 0"
            )
        self._traffic_events += 1
        self._heap.push(request.request_time, Arrival(request))

    def schedule_think(self, client_id: int, time: float) -> None:
        """Schedule a closed-loop client's next issue instant."""
        self._traffic_events += 1
        event = self._think_events.get(client_id)
        if event is None:
            event = self._think_events[client_id] = ClientThink(client_id)
        self._heap.push(max(0.0, time), event)

    # ------------------------------------------------------------ recording
    def _record_served(self, record: ServedQuery) -> None:
        self._served_sink.append(record)
        self._aggregator.observe_served(record)
        if self.sink is not None:
            self.sink.append(record)
        self._tick_served += 1
        if record.fidelity is not None:
            totals = self._tick_fidelity_totals
            totals[record.shard] = totals.get(record.shard, 0.0) + record.fidelity
            self._tick_fidelity_count += 1

    def _record_window(self, record: WindowRecord) -> None:
        self._window_sink.append(record)
        self._aggregator.observe_window(record)
        if self.sink is not None:
            self.sink.append(record)
        self._tick_windows += 1

    def _record_rejected(self, record: RejectedQuery) -> None:
        self._rejected_sink.append(record)
        self._aggregator.observe_rejected(record)
        if self.sink is not None:
            self.sink.append(record)
        self._tick_rejected += 1
        if record.reason == REJECT_DEADLINE_EXPIRED:
            self._tick_shed += 1

    def _record_scale(self, record: ScaleEvent) -> None:
        # Scale events follow the retention mode like every other record
        # stream: O(transitions) is not O(requests), but an oscillating
        # autoscaler on a long-haul run would still grow without bound.
        self._scale_sink.append(record)
        if self.sink is not None:
            self.sink.append(record)

    # ------------------------------------------------------------- handlers
    def _on_arrival(self, now: float, request: QueryRequest) -> None:
        self._tick_arrivals += 1
        if self._dedupe and self._seen_ids.add(request.query_id):
            raise ValueError(
                f"duplicate query_id {request.query_id} in trace; "
                "query ids key the per-request results and must be unique"
            )
        if request.address_amplitudes is None:
            raise ValueError("service requests require address amplitudes")
        if request.min_fidelity is not None and not 0.0 < request.min_fidelity <= 1.0:
            raise ValueError("min_fidelity must be in (0, 1]")
        # Every validated arrival is "offered" — it must end up served,
        # rejected, or still queued (the conservation invariant the
        # sanitizer checks at every drain).
        self._offered += 1
        shard, local = self.fleet.shard_map.route(request.address_amplitudes)
        if shard == ANY_SHARD:
            # Fidelity-aware placement: replicated shards all hold the full
            # memory, so prefer the shortest queue among the replicas that
            # can meet the request's fidelity SLO (with distillation if
            # allowed) — in a mixed fleet that is how SLO-carrying traffic
            # lands on the encoded replicas.
            candidates = self._active_shards()
            if request.min_fidelity is not None:
                candidates = [
                    s for s in candidates
                    if self._feasible_copies(s, request) is not None
                ]
            if not candidates:
                self._reject(request, self._shortest_queue(now), now, REJECT_FIDELITY)
                return
            shard = self._shortest_queue(now, candidates)
        copies = self._feasible_copies(shard, request)
        if copies is None:
            self._reject(request, shard, now, REJECT_FIDELITY)
            return
        queue = self._queues[shard]
        if self.max_queue_depth is not None and len(queue) >= self.max_queue_depth:
            self._reject(request, shard, now, REJECT_QUEUE_FULL)
            return
        if request.min_fidelity is not None:
            self._slo_seen = True
        # Per-query routing state is only tracked when a downstream reader
        # exists: copy counts matter past 1 (readers default to 1), local
        # amplitudes only reach the backend on functional windows.
        if copies != 1:
            self._copies[request.query_id] = copies
        if self._functional:
            self._local_amps[request.query_id] = local
        queue.append(request)
        depth = len(queue)
        if depth > self._max_depth[shard]:
            self._max_depth[shard] = depth
        self._maybe_start(shard, now)

    def _predicted_fidelities(self, shard: int, occupancy: int) -> tuple[float, ...]:
        """``backend.predicted_window_fidelities(occupancy)`` for one shard.

        Memoization lives with the backend now, not the engine: every
        backend keeps an instance memo and shares the derived vectors
        through the process-wide
        :class:`~repro.schedule_cache.ScheduleCacheRegistry`, so
        autoscaled replicas and forked workers inherit warm predictions
        and an engine-level cache (with its fleet-change invalidation
        hazard) has nothing left to add.
        """
        return self._backends[shard].predicted_window_fidelities(occupancy)

    def _feasible_copies(self, shard: int, request: QueryRequest) -> int | None:
        """Fewest parallel copies that lift the shard's predicted fidelity
        over the request's SLO (1 without an SLO or when the bare prediction
        already suffices); ``None`` when even the most copies the engine may
        spend cannot reach the target.

        The copies are modelled as what they are — extra pipelined
        admissions — so ``k`` copies distill the *worst slot* of a
        ``k``-query window, not the lone-query bound: spending more copies
        also costs more crosstalk, and both sides of that trade-off are in
        the check.
        """
        if request.min_fidelity is None:
            return 1
        most = min(self.max_distillation_copies, self._window_sizes[shard])
        for copies in range(1, most + 1):
            worst = min(self._predicted_fidelities(shard, copies))
            if _distilled(worst, copies) >= request.min_fidelity:
                return copies
        return None

    def _batch_predictions(self, shard: int, batch: list[QueryRequest]) -> list[float]:
        """Per-request predicted fidelity of one window, copies included.

        Distillation copies are extra pipelined admissions sharing the
        window (they are also charged that way in ``_execute_window``), so
        the window is predicted at its full occupancy — ``sum(copies)``
        slots — request ``j`` owning the contiguous slot run of its copies.
        Each request's prediction is its worst copy slot, distilled.
        """
        copies = [self._copies.get(r.query_id, 1) for r in batch]
        expanded = self._predicted_fidelities(shard, sum(copies))
        predictions = []
        offset = 0
        for count in copies:
            worst = min(expanded[offset:offset + count])
            predictions.append(_distilled(worst, count))
            offset += count
        return predictions

    def _reject(
        self, request: QueryRequest, shard: int, now: float, reason: str
    ) -> None:
        """Record one refusal and let the source react (closed-loop clients
        pace on rejections exactly as they pace on completions)."""
        self._copies.pop(request.query_id, None)
        self._local_amps.pop(request.query_id, None)
        record = RejectedQuery(
            query_id=request.query_id,
            tenant=request.qpu,
            shard=shard,
            time=now,
            reason=reason,
            deadline=request.deadline,
            min_fidelity=request.min_fidelity,
        )
        self._record_rejected(record)
        self._source.on_rejection(self, record)

    def _maybe_start(self, shard: int, now: float) -> None:
        """Schedule a window admission on an idle shard with queued work."""
        if (
            self._active[shard]
            and self._queues[shard]
            and not self._window_pending[shard]
            and self._busy_until[shard] <= now
        ):
            self._window_pending[shard] = True
            self._traffic_events += 1
            self._heap.push(now, self._start_events[shard])

    def _on_window_start(self, now: float, shard: int) -> None:
        self._window_pending[shard] = False
        if not self._active[shard] or self._busy_until[shard] > now:
            return
        queue = self._queues[shard]
        if self.shed_expired and queue:
            kept: list[QueryRequest] = []
            for request in queue:
                # A request whose deadline is exactly `now` can no longer
                # finish on time (execution takes at least one layer), so
                # the boundary sheds — matching `missed_deadline`, which
                # only forgives finish_layer <= deadline.
                if request.deadline is not None and request.deadline <= now:
                    self._reject(request, shard, now, REJECT_DEADLINE_EXPIRED)
                else:
                    kept.append(request)
            queue[:] = kept
        if self._slo_seen and any(
            request.min_fidelity is not None for request in queue
        ):
            # Re-validate fidelity SLOs against *this* shard: rebalancing
            # may have migrated a request admitted elsewhere.  A request
            # this shard cannot serve is refused rather than silently run
            # below its target; feasible ones get their copy count pinned
            # to this shard's prediction.  (``_slo_seen`` gates the queue
            # scan itself: a run that never admitted an SLO has nothing to
            # re-validate.)
            kept = []
            for request in queue:
                copies = self._feasible_copies(shard, request)
                if copies is None:
                    self._reject(request, shard, now, REJECT_FIDELITY)
                else:
                    self._copies[request.query_id] = copies
                    kept.append(request)
            queue[:] = kept
        if not queue:
            return
        batch = self.fleet.policy.select(queue, self._window_sizes[shard], now)
        if self._slo_seen:
            batch = self._cap_batch_for_fidelity(shard, batch, queue)
        self._execute_window(shard, batch, now)

    def _cap_batch_for_fidelity(
        self, shard: int, batch: list[QueryRequest], queue: list[QueryRequest]
    ) -> list[QueryRequest]:
        """Shrink a selected batch until every fidelity SLO in it is met.

        Two window-level effects can break a per-query feasible admission:
        pipelining-depth degradation (a full window predicts lower slot
        fidelities than a lone query) and the distillation copies of the
        batched queries overflowing the window's parallelism.  Dropping the
        last-admitted request back to the queue head restores both
        invariants; a batch of one is always feasible by admission.
        """
        if all(request.min_fidelity is None for request in batch):
            return batch
        limit = self._window_sizes[shard]
        while len(batch) > 1:
            occupancy = sum(self._copies.get(r.query_id, 1) for r in batch)
            predicted = self._batch_predictions(shard, batch)
            feasible = occupancy <= limit and all(
                request.min_fidelity is None
                or predicted[slot] >= request.min_fidelity
                for slot, request in enumerate(batch)
            )
            if feasible:
                break
            queue.insert(0, batch.pop())
        return batch

    def _execute_window(
        self, shard: int, batch: list[QueryRequest], admit: float
    ) -> None:
        """Run one pipeline window on one backend, at absolute layer ``admit``.

        The backend receives shard-local requests (translated address
        superpositions) and renumbers them to window slots internally, so
        its schedule and lowering caches are shared across every window of
        the run.
        """
        if self.sanitize and self._busy_until[shard] > admit:
            raise SanitizerViolation(
                f"window admitted on busy shard {shard}: busy until "
                f"{self._busy_until[shard]}, admitted at {admit}"
            )
        backend = self._backends[shard]
        functional = self._functional
        if functional:
            local_requests = [
                QueryRequest(
                    query_id=request.query_id,
                    address_amplitudes=self._local_amps[request.query_id],
                    request_time=request.request_time,
                    qpu=request.qpu,
                    initial_bus=request.initial_bus,
                    priority=request.priority,
                )
                for request in batch
            ]
        else:
            # Timing-only windows never read per-request state (every
            # adapter serves them from its memoized timing window), so the
            # shard-local renumbered copies would be pure allocation.
            local_requests = batch
        profiler = self._profiler
        if profiler is None:
            result = backend.run_window(local_requests, functional=functional)
        else:
            result = profiler.call(
                "run_window", backend.run_window, local_requests,
                functional=functional,
            )
        copies_map = self._copies
        if copies_map:
            predictions = self._batch_predictions(shard, batch)
        else:
            # No in-flight distillation: the window's predictions are the
            # backend's occupancy vector verbatim (one copy per slot, and
            # distillation at one copy is the identity).
            predictions = self._predicted_fidelities(shard, len(batch))

        keep_outputs = functional and self.retention == "full"
        for slot, request in enumerate(batch):
            # Functional outputs are per-request state the report keys by
            # query id — retaining them for every query is exactly the
            # unbounded growth the sampled / none modes exist to avoid.
            if keep_outputs and result.outputs[slot] is not None:
                self._outputs[request.query_id] = self.fleet.shard_map.to_global_outputs(
                    shard, result.outputs[slot]
                )
            copies = copies_map.get(request.query_id, 1) if copies_map else 1
            slot_fidelity = result.fidelities[slot]
            record = ServedQuery._from_fields(
                query_id=request.query_id,
                tenant=request.qpu,
                shard=shard,
                request_time=request.request_time,
                admit_layer=admit,
                start_layer=admit + result.start_offsets[slot],
                finish_layer=admit + result.finish_offsets[slot],
                # Distillation delivers the distilled state: its suppression
                # applies to the slot's quality, measured or predicted.
                fidelity=(
                    slot_fidelity
                    if copies == 1 or slot_fidelity is None
                    else _distilled(slot_fidelity, copies)
                ),
                architecture=backend.name,
                deadline=request.deadline,
                predicted_fidelity=predictions[slot],
                min_fidelity=request.min_fidelity,
                distillation_copies=copies,
            )
            self._record_served(record)
            self._source.on_completion(self, record)
        # Distillation copies are extra admissions into the same window:
        # each one keeps the backend busy for one more admission interval.
        if copies_map:
            extra_copies = sum(
                copies_map.get(r.query_id, 1) - 1 for r in batch
            )
        else:
            extra_copies = 0
        total_layers = result.total_layers
        if extra_copies:
            total_layers += float(extra_copies * result.interval)
        self._record_window(
            WindowRecord._from_fields(
                shard=shard,
                admit_layer=admit,
                batch_size=len(batch),
                interval=result.interval,
                total_layers=total_layers,
                architecture=backend.name,
            )
        )
        # The per-query routing state is dead once the window is recorded;
        # dropping it keeps the engine's footprint independent of how many
        # requests a run serves.
        if copies_map:
            for request in batch:
                copies_map.pop(request.query_id, None)
        if self._local_amps:
            for request in batch:
                self._local_amps.pop(request.query_id, None)
        busy = admit + total_layers
        self._busy_until[shard] = busy
        self._traffic_events += 1
        self._heap.push(busy, self._drain_events[shard])

    # -------------------------------------------------------------- sanitizer
    def _check_conservation(self, now: float) -> None:
        """Assert ``offered == served + rejected + queued`` right now.

        Served records are written at window-admit time, so between events
        there is no in-flight term: every offered request is either in a
        queue or already accounted as served / rejected (shed requests are
        a flavor of rejection).  Checked on every :class:`WindowDrain` and
        at end of run.
        """
        served = self._aggregator.served_count
        rejected = self._aggregator.rejected_count
        queued = sum(len(queue) for queue in self._queues)
        if self._offered != served + rejected + queued:
            raise SanitizerViolation(
                f"conservation broken at t={now}: offered={self._offered} "
                f"!= served={served} + rejected={rejected} + queued={queued}"
            )
        if self._aggregator.shed_count > rejected:
            raise SanitizerViolation(
                f"shed count {self._aggregator.shed_count} exceeds rejected "
                f"count {rejected} at t={now}"
            )

    # ------------------------------------------------------------- placement
    def _active_shards(self) -> list[int]:
        return [i for i in range(len(self._backends)) if self._active[i]]

    def _shortest_queue(self, now: float, shards: list[int] | None = None) -> int:
        """Least-loaded shard among ``shards`` (default: all active):
        fewest queued, then earliest free."""
        return min(
            self._active_shards() if shards is None else shards,
            key=lambda shard: (
                len(self._queues[shard]),
                max(self._busy_until[shard], now),
                shard,
            ),
        )

    # ------------------------------------------------------------- telemetry
    def _work_remains(self, now: float) -> bool:
        """Whether any serving activity is pending or possible.

        Counts queued requests, busy shards and *traffic* events still in
        the heap — deliberately not other recurring ticks, so a
        ScaleCheck and a TelemetryTick can coexist without keeping each
        other (and the run) alive forever.
        """
        return (
            self._traffic_events > 0
            or any(self._queues[shard] for shard in self._active_shards())
            or any(busy > now for busy in self._busy_until)
        )

    def _flush_interval(self, end: float) -> None:
        """Emit one :class:`IntervalStats` covering ``(_tick_start, end]``."""
        span = end - self._tick_start
        active = self._active_shards()
        depths = [len(self._queues[shard]) for shard in active]
        fidelity_total = math.fsum(
            self._tick_fidelity_totals[shard]
            for shard in sorted(self._tick_fidelity_totals)
        )
        self._telemetry_raw.append(
            (
                self._tick_start,
                end,
                self._tick_arrivals,
                self._tick_served,
                self._tick_rejected,
                self._tick_shed,
                self._tick_windows,
                sum(depths),
                max(depths, default=0),
                fidelity_total,
                self._tick_fidelity_count,
            )
        )
        self._telemetry.append(
            IntervalStats(
                start_layer=self._tick_start,
                end_layer=end,
                arrivals=self._tick_arrivals,
                served=self._tick_served,
                rejected=self._tick_rejected,
                shed=self._tick_shed,
                windows=self._tick_windows,
                throughput_queries_per_layer=(
                    self._tick_served / span if span > 0 else 0.0
                ),
                queue_depth_total=sum(depths),
                queue_depth_max=max(depths, default=0),
                # Rate over the interval's *dispositions* (completions +
                # refusals), which are all counted at the instant they
                # happen — dividing by arrivals would be incoherent when a
                # request sheds intervals after it arrived (rates over 1,
                # or 0.0 despite sheds).
                rejection_rate=(
                    self._tick_rejected
                    / (self._tick_served + self._tick_rejected)
                    if (self._tick_served + self._tick_rejected)
                    else 0.0
                ),
                mean_fidelity=(
                    fidelity_total / self._tick_fidelity_count
                    if self._tick_fidelity_count
                    else None
                ),
            )
        )
        self._tick_start = end
        self._tick_arrivals = 0
        self._tick_served = 0
        self._tick_rejected = 0
        self._tick_shed = 0
        self._tick_windows = 0
        self._tick_fidelity_totals = {}
        self._tick_fidelity_count = 0

    def _on_telemetry_tick(self, now: float) -> None:
        self._flush_interval(now)
        if self._work_remains(now):
            self._heap.push(now + self.telemetry_interval, TelemetryTick())

    # ----------------------------------------------------------- autoscaling
    def _on_scale_check(self, now: float) -> None:
        config = self.autoscaler
        active = self._active_shards()
        depth = max(len(self._queues[shard]) for shard in active)
        if depth >= config.high_watermark and len(active) < config.max_shards:
            self._scale_up(now, depth)
        elif depth <= config.low_watermark and len(active) > config.min_shards:
            self._scale_down(now, depth)
        if self._work_remains(now):
            self._heap.push(now + config.period, ScaleCheck())

    def _scale_up(self, now: float, depth: int) -> None:
        """Add one full-memory replica and rebalance queued work onto it.

        A previously retired replica (idle, empty, byte-identical memory —
        writes never happen mid-run) is reactivated in preference to
        building a new backend, so oscillating load does not pay repeated
        QRAM construction or grow the fleet lists without bound.
        """
        config = self.autoscaler
        inactive = [
            shard
            for shard in range(len(self._backends))
            if not self._active[shard]
        ]
        if inactive:
            shard = max(inactive)
            self._active[shard] = True
        else:
            architecture = config.architecture or self._backends[0].name
            backend = build_backend(
                architecture,
                self.fleet.shard_map.shard_capacity,
                list(self._backends[0].data),
                parameters=getattr(self.fleet, "parameters", None),
            )
            requested = getattr(self.fleet, "requested_window_size", None)
            window_size = (
                backend.query_parallelism
                if requested is None
                else max(1, min(requested, backend.query_parallelism))
            )
            # A replica of an existing memory image resolves to the warm
            # shared entry in the process-wide schedule-cache registry, so
            # scale-up never re-derives schedules the fleet already paid
            # for.
            default_registry().prewarm([backend])
            shard = len(self._backends)
            self._backends.append(backend)
            self._window_sizes.append(window_size)
            self._queues.append([])
            self._busy_until.append(0.0)
            self._window_pending.append(False)
            self._active.append(True)
            self._max_depth[shard] = 0
            self._start_events.append(WindowStart(shard))
            self._drain_events.append(WindowDrain(shard))
        # No prediction cache to invalidate here: predictions are memoized
        # on the backends themselves (shared through the schedule-cache
        # registry), so a rebuilt or reactivated replica carries its own
        # warm, correct vectors.
        self._record_scale(
            ScaleEvent(
                time=now,
                action="up",
                shard=shard,
                active_shards=len(self._active_shards()),
                trigger_depth=depth,
            )
        )
        self._rebalance(now)

    def _rebalance(self, now: float) -> None:
        """Even out queued (unadmitted) requests across active replicas.

        Replicated shards all hold the full memory, so a queued request can
        move to any replica *that can meet its fidelity SLO* (a bare
        replica must not inherit strict traffic from an encoded one): the
        newest such request of the deepest queue migrates until depths
        differ by at most one or nothing movable remains.  Shards that
        gained work start a window if idle.
        """
        active = self._active_shards()
        while True:
            deepest = max(active, key=lambda s: (len(self._queues[s]), -s))
            shallowest = min(active, key=lambda s: (len(self._queues[s]), s))
            if len(self._queues[deepest]) - len(self._queues[shallowest]) <= 1:
                break
            queue = self._queues[deepest]
            movable = next(
                (
                    index
                    for index in range(len(queue) - 1, -1, -1)
                    if self._feasible_copies(shallowest, queue[index]) is not None
                ),
                None,
            )
            if movable is None:
                break
            request = queue.pop(movable)
            if request.min_fidelity is not None:
                self._copies[request.query_id] = self._feasible_copies(
                    shallowest, request
                )
            self._queues[shallowest].append(request)
            self._max_depth[shallowest] = max(
                self._max_depth[shallowest], len(self._queues[shallowest])
            )
        for shard in active:
            self._maybe_start(shard, now)

    def _scale_down(self, now: float, depth: int) -> None:
        """Retire the highest-indexed idle, empty replica."""
        config = self.autoscaler
        candidates = [
            shard
            for shard in self._active_shards()
            if not self._queues[shard] and self._busy_until[shard] <= now
        ]
        if not candidates or len(self._active_shards()) <= config.min_shards:
            return
        shard = max(candidates)
        self._active[shard] = False
        self._record_scale(
            ScaleEvent(
                time=now,
                action="down",
                shard=shard,
                active_shards=len(self._active_shards()),
                trigger_depth=depth,
            )
        )
