"""A persistent pool of fork-start worker processes.

Both process-parallel layers of this repository need the same plumbing:
fork a handful of workers, feed each a stream of picklable tasks, collect
picklable results without deadlocking on pipe buffers, and re-raise
worker failures deterministically.  Before this module the plumbing lived
inline in :mod:`repro.engine.parallel` (one ephemeral worker per shard
group, one task each); the sweep engine (:mod:`repro.sweep`) needs the
*persistent* form — long-lived workers executing hundreds of scenario
runs so the process-wide :class:`~repro.schedule_cache.ScheduleCacheRegistry`
each worker accumulates is reused across runs instead of being rebuilt by
a fresh fork every time.  :class:`ForkWorkerPool` is the shared core.

Design points:

* **Fork start, nothing pickled on the way in but the task payload.**
  The handler callable (and everything it closes over — fleet objects,
  warm caches) is inherited copy-on-write at fork, exactly like the
  parallel serving workers.  Task payloads and results cross the pipe and
  must pickle.
* **Deterministic routing.**  ``submit(task_id, payload, worker=i)`` pins
  a task to worker ``i % workers`` (cache affinity: the sweep engine
  routes every scenario sharing a fleet fingerprint to the same worker);
  without a hint tasks round-robin in submission order.  Routing affects
  only *where* a task runs, never its result.
* **No submit/collect deadlocks.**  :meth:`map_unordered` interleaves
  submission with collection and bounds the number of in-flight tasks per
  worker, so a worker blocked sending a large result never faces a parent
  blocked sending it another task.
* **Worker recycling.**  ``recycle_after=k`` retires each worker after
  ``k`` tasks and forks a fresh one for the next — ``recycle_after=1`` is
  exactly the fork-per-run execution model the persistent pool replaces,
  kept as the honest cold baseline for the sweep benchmarks.
* **Failures are data.**  A task whose handler raises yields an
  ``("error", ...)`` outcome carrying the exception (or a summary when it
  does not pickle); a worker that dies mid-task yields one for every task
  it still owed.  Callers decide how to surface them — both call sites
  collect every outcome first and raise the lowest-task-id failure so the
  raised error is independent of completion order.

Platforms without the ``fork`` start method cannot host the pool;
:func:`fork_available` lets callers degrade to in-process execution (both
call sites do, producing identical results).
"""

from __future__ import annotations

import multiprocessing
from collections import deque
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass
from multiprocessing.connection import Connection, wait
from typing import Any

__all__ = ["ForkWorkerPool", "PoolTaskError", "TaskOutcome", "fork_available"]


def fork_available() -> bool:
    """Whether this platform can fork pool workers at all."""
    return "fork" in multiprocessing.get_all_start_methods()


@dataclass(frozen=True)
class TaskOutcome:
    """One task's terminal state, as collected from a worker.

    Attributes:
        task_id: the caller's identifier for the task.
        error: ``None`` on success, the worker-side exception otherwise
            (or a ``RuntimeError`` summary when the original would not
            pickle, or when the worker died without reporting).
        result: the handler's return value (``None`` on error).
    """

    task_id: int
    error: BaseException | None
    result: Any = None


class PoolTaskError(RuntimeError):
    """A worker process died without reporting a result for its task."""


def _worker_main(
    task_conn: Connection,
    result_conn: Connection,
    handler: Callable[[Any], Any],
) -> None:
    """Worker body: execute tasks off the pipe until the ``None`` sentinel."""
    try:
        while True:
            message = task_conn.recv()
            if message is None:
                break
            task_id, payload = message
            try:
                result = handler(payload)
            except BaseException as exc:  # noqa: BLE001 - shipped to parent
                try:
                    result_conn.send((task_id, "error", exc))
                except Exception:
                    # The exception itself would not pickle; ship a summary
                    # that still names the failure.
                    result_conn.send(
                        (
                            task_id,
                            "error",
                            RuntimeError(f"{type(exc).__name__}: {exc}"),
                        )
                    )
            else:
                result_conn.send((task_id, "ok", result))
    except EOFError:
        pass
    finally:
        task_conn.close()
        result_conn.close()


@dataclass
class _Worker:
    """Parent-side handle on one live worker process."""

    process: Any
    task_conn: Connection
    result_conn: Connection
    inflight: deque[int]
    tasks_started: int = 0


class ForkWorkerPool:
    """A fixed-size pool of persistent fork-start worker processes.

    Args:
        handler: the function every worker runs per task; called as
            ``handler(payload)`` in the worker and inherited at fork (so
            it may close over arbitrarily heavy state without pickling).
        workers: worker process count (>= 1).
        recycle_after: retire each worker after this many tasks and fork
            a replacement (``None`` = workers live for the pool's whole
            life).  ``recycle_after=1`` reproduces fork-per-task
            execution — every task pays a cold start.
        max_inflight: most unfinished tasks outstanding per worker before
            :meth:`map_unordered` waits for results; bounds pipe
            buffering on both directions.

    Use as a context manager (``with ForkWorkerPool(...) as pool``) or
    call :meth:`close` explicitly.
    """

    def __init__(
        self,
        handler: Callable[[Any], Any],
        workers: int,
        *,
        recycle_after: int | None = None,
        max_inflight: int = 4,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if recycle_after is not None and recycle_after < 1:
            raise ValueError("recycle_after must be None or >= 1")
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if not fork_available():
            raise RuntimeError(
                "ForkWorkerPool requires the 'fork' start method; gate on "
                "fork_available() and run in-process instead"
            )
        self._ctx = multiprocessing.get_context("fork")
        self._handler = handler
        self._recycle_after = recycle_after
        self._max_inflight = max_inflight
        self._rr_next = 0
        self._closed = False
        self._workers: list[_Worker] = [self._spawn() for _ in range(workers)]

    # ------------------------------------------------------------ lifecycle
    def _spawn(self) -> _Worker:
        task_parent, task_child = self._ctx.Pipe(duplex=False)
        result_parent, result_child = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_worker_main,
            args=(task_parent, result_child, self._handler),
        )
        process.start()
        # The child holds its own ends; the parent must drop them so a dead
        # worker surfaces as EOF instead of a hang.
        task_parent.close()
        result_child.close()
        return _Worker(
            process=process,
            task_conn=task_child,
            result_conn=result_parent,
            inflight=deque(),
        )

    def _retire(self, worker: _Worker) -> None:
        """Shut one worker down (sentinel, join, close pipes)."""
        try:
            worker.task_conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        worker.process.join()
        worker.task_conn.close()
        worker.result_conn.close()

    def close(self) -> None:
        """Retire every worker.  Outstanding tasks are abandoned."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            self._retire(worker)
        self._workers = []

    def __enter__(self) -> "ForkWorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    @property
    def workers(self) -> int:
        return len(self._workers)

    # ------------------------------------------------------------ execution
    def _slot(self, worker_hint: int | None) -> int:
        if worker_hint is not None:
            return worker_hint % len(self._workers)
        slot = self._rr_next
        self._rr_next = (self._rr_next + 1) % len(self._workers)
        return slot

    def _send(self, slot: int, task_id: int, payload: Any) -> None:
        worker = self._workers[slot]
        if (
            self._recycle_after is not None
            and worker.tasks_started >= self._recycle_after
        ):
            # The worker reached its recycle budget with no work in
            # flight (map_unordered drains before recycling); replace it
            # with a cold fork.
            assert not worker.inflight
            self._retire(worker)
            worker = self._workers[slot] = self._spawn()
        worker.task_conn.send((task_id, payload))
        worker.tasks_started += 1
        worker.inflight.append(task_id)

    def _collect_ready(self, timeout: float | None) -> list[TaskOutcome]:
        """Receive every result currently available (blocking per ``timeout``)."""
        connections = {
            worker.result_conn: worker
            for worker in self._workers
            if worker.inflight
        }
        if not connections:
            return []
        outcomes: list[TaskOutcome] = []
        for connection in wait(list(connections), timeout=timeout):
            worker = connections[connection]  # type: ignore[index]
            try:
                task_id, status, value = worker.result_conn.recv()
            except EOFError:
                # The worker died.  Every task it still owed is an error;
                # replace the corpse so later submissions have a worker.
                owed = list(worker.inflight)
                worker.inflight.clear()
                worker.process.join()
                slot = self._workers.index(worker)
                worker.task_conn.close()
                worker.result_conn.close()
                self._workers[slot] = self._spawn()
                for task_id in owed:
                    outcomes.append(
                        TaskOutcome(
                            task_id=task_id,
                            error=PoolTaskError(
                                f"pool worker died without reporting a "
                                f"result for task {task_id}"
                            ),
                        )
                    )
                continue
            worker.inflight.remove(task_id)
            if status == "ok":
                outcomes.append(TaskOutcome(task_id=task_id, error=None, result=value))
            else:
                outcomes.append(TaskOutcome(task_id=task_id, error=value))
        return outcomes

    def map_unordered(
        self, tasks: Iterable[tuple[int, Any, int | None]]
    ) -> Iterator[TaskOutcome]:
        """Run tasks across the pool, yielding outcomes as they complete.

        Args:
            tasks: ``(task_id, payload, worker_hint)`` triples.  The hint
                pins the task to ``worker_hint % workers`` (cache
                affinity); ``None`` round-robins.

        Yields one :class:`TaskOutcome` per task, in *completion* order —
        callers needing determinism must reorder by ``task_id`` (both
        call sites do).  Submission interleaves with collection so
        neither direction's pipe can fill while the other end is
        blocked.
        """
        if self._closed:
            raise RuntimeError("the pool is closed")
        pending: dict[int, deque[tuple[int, Any]]] = {
            slot: deque() for slot in range(len(self._workers))
        }
        outstanding = 0
        for task_id, payload, worker_hint in tasks:
            pending[self._slot(worker_hint)].append((task_id, payload))
            outstanding += 1
        while outstanding:
            progressed = False
            for slot, queue in pending.items():
                worker = self._workers[slot]
                recycling = (
                    self._recycle_after is not None
                    and worker.tasks_started >= self._recycle_after
                    and worker.inflight
                )
                while (
                    queue
                    and len(self._workers[slot].inflight) < self._max_inflight
                    and not recycling
                ):
                    task_id, payload = queue.popleft()
                    self._send(slot, task_id, payload)
                    progressed = True
                    worker = self._workers[slot]
                    recycling = (
                        self._recycle_after is not None
                        and worker.tasks_started >= self._recycle_after
                        and bool(worker.inflight)
                    )
            # Block for results only when nothing could be submitted —
            # otherwise just sweep up whatever is already waiting.
            for outcome in self._collect_ready(
                timeout=None if not progressed else 0
            ):
                outstanding -= 1
                yield outcome

    def run(
        self, tasks: Iterable[tuple[int, Any, int | None]]
    ) -> list[TaskOutcome]:
        """:meth:`map_unordered`, collected and sorted by ``task_id``."""
        outcomes = list(self.map_unordered(tasks))
        outcomes.sort(key=lambda outcome: outcome.task_id)
        return outcomes
