"""Typed events and the virtual-time event heap of the serving engine.

The engine advances one virtual clock (raw circuit layers) over a heap of
typed events.  Events at the same timestamp are ordered by a per-type
priority so that one instant unfolds deterministically and exactly like the
legacy batch-window loop did:

1. :class:`Arrival` / :class:`ClientThink` — every request that arrives at
   time ``t`` is enqueued before any window admits at ``t`` (a think event
   *is* an arrival: the client issues its next request the moment its think
   time elapses);
2. :class:`WindowDrain` — shards that finish at ``t`` free up before new
   windows are considered;
3. :class:`ScaleCheck` — the autoscaler observes the post-drain queue
   depths;
4. :class:`WindowStart` — idle shards with queued work admit one pipeline
   window each;
5. :class:`TelemetryTick` — the periodic telemetry flush observes the
   instant last, after every admission at ``t`` has resolved, so its
   queue-depth snapshot never counts work a window at the same instant
   already absorbed.

Ties within a priority level resolve in scheduling order (a monotone
sequence number), so every run is exactly reproducible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import ClassVar, Union

from repro.core.query import QueryRequest


@dataclass(frozen=True)
class Arrival:
    """A request arrives at the service at its ``request_time``."""

    request: QueryRequest
    PRIORITY: ClassVar[int] = 0


@dataclass(frozen=True)
class ClientThink:
    """A closed-loop client finishes thinking and issues its next request."""

    client_id: int
    PRIORITY: ClassVar[int] = 0


@dataclass(frozen=True)
class WindowDrain:
    """A shard's in-flight pipeline window fully drains; the shard is free."""

    shard: int
    PRIORITY: ClassVar[int] = 1


@dataclass(frozen=True)
class ScaleCheck:
    """Periodic autoscaler tick: compare queue depths against watermarks."""

    PRIORITY: ClassVar[int] = 2


@dataclass(frozen=True)
class WindowStart:
    """An idle shard with queued work admits one pipeline window."""

    shard: int
    PRIORITY: ClassVar[int] = 3


@dataclass(frozen=True)
class TelemetryTick:
    """Periodic telemetry flush: emit one time-windowed interval sample."""

    PRIORITY: ClassVar[int] = 4


Event = Union[
    Arrival, ClientThink, WindowDrain, ScaleCheck, WindowStart, TelemetryTick
]


class EventHeap:
    """A min-heap of events keyed on ``(time, type priority, sequence)``.

    The sequence number both breaks ties deterministically and keeps the
    heap from ever comparing event payloads.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._sequence = 0

    def push(self, time: float, event: Event) -> None:
        """Schedule an event at an absolute virtual time (raw layers)."""
        heapq.heappush(self._heap, (time, event.PRIORITY, self._sequence, event))
        self._sequence += 1

    def pop(self) -> tuple[float, Event]:
        """Remove and return the next ``(time, event)`` pair."""
        time, _, _, event = heapq.heappop(self._heap)
        return time, event

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
