"""Typed events and the virtual-time event heap of the serving engine.

The engine advances one virtual clock (raw circuit layers) over a heap of
typed events.  Events at the same timestamp are ordered by a per-type
priority so that one instant unfolds deterministically and exactly like the
legacy batch-window loop did:

1. :class:`Arrival` then :class:`ClientThink` — every request that arrives
   at time ``t`` is enqueued before any window admits at ``t`` (a think
   event *is* an arrival: the client issues its next request the moment its
   think time elapses; a run uses one or the other, never both, so the
   relative order between them is moot — but each event type still holds a
   *unique* priority so the registry stays totally ordered, as simlint's
   SIM004 enforces);
2. :class:`WindowDrain` — shards that finish at ``t`` free up before new
   windows are considered;
3. :class:`ScaleCheck` — the autoscaler observes the post-drain queue
   depths;
4. :class:`WindowStart` — idle shards with queued work admit one pipeline
   window each;
5. :class:`TelemetryTick` — the periodic telemetry flush observes the
   instant last, after every admission at ``t`` has resolved, so its
   queue-depth snapshot never counts work a window at the same instant
   already absorbed.

Ties within a priority level resolve in scheduling order (a monotone
sequence number), so every run is exactly reproducible.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Any, ClassVar, Union

from repro.core.query import QueryRequest


@dataclass(frozen=True)
class Arrival:
    """A request arrives at the service at its ``request_time``."""

    request: QueryRequest
    PRIORITY: ClassVar[int] = 0


@dataclass(frozen=True)
class ClientThink:
    """A closed-loop client finishes thinking and issues its next request."""

    client_id: int
    PRIORITY: ClassVar[int] = 1


@dataclass(frozen=True)
class WindowDrain:
    """A shard's in-flight pipeline window fully drains; the shard is free."""

    shard: int
    PRIORITY: ClassVar[int] = 2


@dataclass(frozen=True)
class ScaleCheck:
    """Periodic autoscaler tick: compare queue depths against watermarks."""

    PRIORITY: ClassVar[int] = 3


@dataclass(frozen=True)
class WindowStart:
    """An idle shard with queued work admits one pipeline window."""

    shard: int
    PRIORITY: ClassVar[int] = 4


@dataclass(frozen=True)
class TelemetryTick:
    """Periodic telemetry flush: emit one time-windowed interval sample."""

    PRIORITY: ClassVar[int] = 5


Event = Union[
    Arrival, ClientThink, WindowDrain, ScaleCheck, WindowStart, TelemetryTick
]


class SanitizerViolation(AssertionError):
    """A runtime simulation invariant was broken.

    Raised only in sanitizer mode (``ServiceEngine(sanitize=True)`` /
    ``REPRO_SANITIZE=1``): clock monotonicity, heap-key ordering, window
    admission on a busy shard, or the request-conservation invariant.
    """


def merge_sorted_records(
    streams: Sequence[Sequence[Any]],
    key: Callable[[Any], Any],
    *,
    sanitize: bool = False,
    description: str = "record",
) -> list[Any]:
    """Deterministic k-way merge of per-partition record streams.

    Parallel serving reassembles each shard's records into the global
    order the single-process oracle would have produced; the merge is the
    list analogue of the :class:`EventHeap` pop order, keyed the same way
    (``heapq.merge`` is stable, so equal keys resolve in stream — i.e.
    shard — order).  In sanitizer mode every input stream is first checked
    to be nondecreasing under ``key``: a worker whose records come back
    out of order would silently corrupt the merged timeline, which is
    exactly the class of bug the sanitizer exists to catch at the
    worker boundary.

    Raises:
        SanitizerViolation: when ``sanitize`` and a stream's keys are not
            nondecreasing.
    """
    if sanitize:
        for index, stream in enumerate(streams):
            last: Any = None
            for record in stream:
                current = key(record)
                if last is not None and current < last:
                    raise SanitizerViolation(
                        f"{description} stream {index} is not nondecreasing "
                        f"across the worker boundary: key {current!r} after "
                        f"{last!r}"
                    )
                last = current
    return list(heapq.merge(*streams, key=key))


class EventHeap:
    """A min-heap of events keyed on ``(time, type priority, sequence)``.

    The sequence number both breaks ties deterministically and keeps the
    heap from ever comparing event payloads.

    Args:
        sanitize: verify on every operation that timestamps are finite
            numbers and that popped keys come out in nondecreasing
            ``(time, priority, sequence)`` order — the oracle ordering the
            planned parallel event-merge must reproduce.
    """

    def __init__(self, sanitize: bool = False) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._sequence = 0
        self._sanitize = sanitize
        self._last_key: tuple[float, int, int] | None = None

    def push(self, time: float, event: Event) -> None:
        """Schedule an event at an absolute virtual time (raw layers)."""
        if self._sanitize and not time == time:  # NaN defeats heap ordering
            raise SanitizerViolation(
                f"event {type(event).__name__} scheduled at NaN"
            )
        heapq.heappush(self._heap, (time, event.PRIORITY, self._sequence, event))
        self._sequence += 1

    def pop(self) -> tuple[float, Event]:
        """Remove and return the next ``(time, event)`` pair."""
        time, priority, sequence, event = heapq.heappop(self._heap)
        if self._sanitize:
            key = (time, priority, sequence)
            if self._last_key is not None and key < self._last_key:
                raise SanitizerViolation(
                    f"heap popped key {key} after {self._last_key}: "
                    "event order is not nondecreasing"
                )
            self._last_key = key
        return time, event

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
