"""Workload sources: one interface for open-loop traces and closed-loop clients.

The engine pulls its traffic from a :class:`WorkloadSource`.  Two families
are provided:

* :class:`TraceSource` — open loop: a pre-materialized list of
  :class:`repro.core.query.QueryRequest` whose arrival times never react to
  service latency (the Poisson / bursty traces of
  :mod:`repro.workloads.generators`).  :class:`StreamingTraceSource` is the
  bounded-memory variant: it pulls a *time-ordered iterator* of requests
  one arrival at a time, so million-query traces (the lazy
  ``iter_poisson_trace`` / ``iter_bursty_trace`` generators) are never
  materialized and the event heap holds at most one future arrival.
* :class:`ClosedLoopSource` — closed loop: ``N`` clients that alternate one
  outstanding query with ``think_layers`` of local processing, the QPU
  query/process loop of Fig. 7 (the same behaviour
  :func:`repro.scheduling.events.periodic_algorithm_arrivals` approximates
  open-loop with a nominal query latency).  Each client's next arrival
  depends on its previous completion, so throughput and latency feed back
  into the offered load.

Sources interact with the engine through three hooks: ``start`` schedules
the initial events, ``on_completion`` observes every served query, and
``next_request`` materializes a client's next request when its think time
elapses.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.query import QueryRequest

if TYPE_CHECKING:
    from repro.engine.core import ServiceEngine
    from repro.metrics.service_stats import RejectedQuery, ServedQuery

#: Builds the address superposition of one closed-loop request:
#: ``(client, per-client query index) -> {address: amplitude}``.
AddressFactory = Callable[["ClosedLoopClient", int], Mapping[int, complex]]


class WorkloadSource:
    """What the serving engine requires of a traffic source."""

    def start(self, engine: ServiceEngine) -> None:
        """Schedule the source's initial events (arrivals or think ticks)."""
        raise NotImplementedError

    def on_completion(self, engine: ServiceEngine, record: ServedQuery) -> None:
        """Observe one served query (closed-loop sources react here)."""

    def on_rejection(self, engine: ServiceEngine, record: RejectedQuery) -> None:
        """Observe one rejected/shed request (closed-loop sources react here).

        Without this hook a closed-loop client whose request was refused
        would never learn its query finished (badly) and would stall
        forever; sources that pace on completions must also pace on
        rejections.
        """

    def next_request(self, client_id: int, now: float) -> QueryRequest | None:
        """The next request of one client, issued at ``now`` (or ``None``)."""
        raise NotImplementedError(
            f"{type(self).__name__} has no closed-loop clients"
        )


class TraceSource(WorkloadSource):
    """Open-loop traffic: a fixed trace of requests with arrival times.

    Requests are scheduled in ``(request_time, query_id)`` order — the
    admission order of the legacy ``QRAMService.serve`` loop — so a trace
    drained through the engine reproduces the historical reports exactly.
    """

    def __init__(self, requests: Sequence[QueryRequest]) -> None:
        if not requests:
            raise ValueError("at least one request is required")
        self.requests = sorted(
            requests, key=lambda r: (r.request_time, r.query_id)
        )

    def start(self, engine: ServiceEngine) -> None:
        for request in self.requests:
            engine.submit(request)


#: Pseudo client id a :class:`StreamingTraceSource` paces its arrivals on.
_STREAM_CLIENT = -1


class StreamingTraceSource(WorkloadSource):
    """Open-loop traffic pulled lazily from a time-ordered request iterator.

    Where :class:`TraceSource` schedules every arrival up front (heap and
    trace both O(requests)), this source holds exactly one pending request:
    each arrival, once delivered, pulls the next from the iterator and
    schedules it.  Peak memory is independent of trace length — the
    serving mode of the million-query scale benchmark.

    Requests must arrive from the iterator in nondecreasing
    ``request_time`` order with nonnegative times (the order
    :class:`TraceSource` would sort them into; lazily generated traces are
    produced that way).  For a time-sorted trace the event sequence — and
    therefore every report — is identical to draining the materialized
    trace through :class:`TraceSource`, which is pinned by test.
    """

    def __init__(self, requests: Iterable[QueryRequest]) -> None:
        self._requests = requests
        self._pending: QueryRequest | None = None
        self._last_time = 0.0

    def start(self, engine: ServiceEngine) -> None:
        self._engine = engine
        self._iterator = iter(self._requests)
        self._pending = next(self._iterator, None)
        self._last_time = 0.0
        if self._pending is None:
            raise ValueError("at least one request is required")
        self._schedule_pending(engine)

    def _schedule_pending(self, engine: ServiceEngine) -> None:
        request = self._pending
        if request.request_time < self._last_time:
            raise ValueError(
                "streaming traces must be sorted by request_time "
                f"(saw {request.request_time} after {self._last_time})"
            )
        self._last_time = request.request_time
        engine.schedule_think(_STREAM_CLIENT, request.request_time)

    def next_request(self, client_id: int, now: float) -> QueryRequest | None:
        request = self._pending
        self._pending = next(self._iterator, None)
        if self._pending is not None:
            self._schedule_pending(self._engine)
        return request


@dataclass
class ClosedLoopClient:
    """One closed-loop client: query, wait for the result, think, repeat.

    Attributes:
        client_id: identifier; doubles as the tenant (``qpu``) of every
            request the client issues.
        queries: total queries the client issues before retiring.
        think_layers: local processing time between a query's completion
            and the next request (``d`` in the paper's Fig. 7 loops).
        start_time: when the client issues its first request.
        deadline_layers: per-request relative deadline (absolute deadline =
            issue time + ``deadline_layers``); ``None`` for best-effort.
        min_fidelity: per-request fidelity SLO carried by every query the
            client issues; ``None`` for best-effort.
    """

    client_id: int
    queries: int
    think_layers: float
    start_time: float = 0.0
    deadline_layers: float | None = None
    min_fidelity: float | None = None

    def __post_init__(self) -> None:
        if self.queries < 0:
            raise ValueError("queries must be >= 0")
        if self.think_layers < 0:
            raise ValueError("think_layers must be >= 0")


class ClosedLoopSource(WorkloadSource):
    """Closed-loop traffic from a fleet of think-time clients.

    Each client holds at most one query in flight: its next request is
    issued ``think_layers`` after the previous one completes.  Query ids
    are assigned from one global counter in issue order, which is
    deterministic for a fixed engine seed and fleet.

    Args:
        clients: the client fleet (client ids must be unique).
        address_factory: builds each request's address superposition from
            ``(client, per-client query index)``.  Interleaved services
            need shard-aligned superpositions; see
            :func:`repro.workloads.generators.closed_loop_source` for a
            ready-made seeded factory.
    """

    def __init__(
        self,
        clients: Sequence[ClosedLoopClient],
        address_factory: AddressFactory,
    ) -> None:
        if not clients:
            raise ValueError("at least one client is required")
        self.clients = {client.client_id: client for client in clients}
        if len(self.clients) != len(clients):
            raise ValueError("client ids must be unique")
        self.address_factory = address_factory
        self._issued = {client.client_id: 0 for client in clients}
        self._next_query_id = 0

    @property
    def total_queries(self) -> int:
        """Queries the fleet issues over a full run."""
        return sum(client.queries for client in self.clients.values())

    def start(self, engine: ServiceEngine) -> None:
        self._issued = {client_id: 0 for client_id in self.clients}
        self._next_query_id = 0
        for client_id in sorted(self.clients):
            client = self.clients[client_id]
            if client.queries > 0:
                engine.schedule_think(client_id, client.start_time)

    def next_request(self, client_id: int, now: float) -> QueryRequest | None:
        client = self.clients[client_id]
        index = self._issued[client_id]
        if index >= client.queries:
            return None
        self._issued[client_id] = index + 1
        query_id = self._next_query_id
        self._next_query_id += 1
        deadline = (
            None
            if client.deadline_layers is None
            else now + client.deadline_layers
        )
        return QueryRequest(
            query_id=query_id,
            address_amplitudes=dict(self.address_factory(client, index)),
            request_time=now,
            qpu=client_id,
            deadline=deadline,
            min_fidelity=client.min_fidelity,
        )

    def on_completion(self, engine: ServiceEngine, record: ServedQuery) -> None:
        self._think_after(engine, record.tenant, record.finish_layer)

    def on_rejection(self, engine: ServiceEngine, record: RejectedQuery) -> None:
        # A rejected or shed request still consumed one of the client's
        # queries (it is accounted in the report's rejected records); the
        # client learns of the failure at rejection time and moves on to
        # its next query after thinking.
        self._think_after(engine, record.tenant, record.time)

    def _think_after(self, engine: ServiceEngine, client_id: int, finished_at: float) -> None:
        client = self.clients.get(client_id)
        if client is None:
            return
        if self._issued[client.client_id] < client.queries:
            engine.schedule_think(
                client.client_id, finished_at + client.think_layers
            )
