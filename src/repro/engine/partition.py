"""Fleet partitioning for parallel serving: plan, split, and validate.

Parallel serving (:mod:`repro.engine.parallel`) runs one child
:class:`~repro.engine.core.ServiceEngine` per shard and merges the events
back deterministically.  That is only *exact* when the shards are truly
independent — no cross-shard placement, no shared mutable scheduling
state, no feedback from one shard's completions into another shard's
arrivals.  This module holds the machinery that decides and enforces
exactness:

* :func:`partition_unsupported_reason` — the single predicate gating the
  parallel path.  Any coupling (replicated placement, autoscaling, a
  random admission policy's shared RNG, closed-loop pacing, an external
  record sink) falls back to the single-process oracle, with the reason
  recorded on the report's :class:`ParallelRunInfo`.
* :func:`split_trace` — partitions a materialized trace by owning shard,
  replaying the oracle's per-arrival validation (duplicate ids, missing
  amplitudes, fidelity-SLO range, shard-spanning superpositions) in the
  oracle's order, so an invalid trace raises the identical error whether
  it is served sequentially or split across workers.
* :class:`PartitionedTraceSource` — the streaming analogue: a trace
  *factory* that can regenerate any subset of shards' requests on demand,
  so each forked worker rebuilds only its own partition (the lazy
  generators take a ``shards=`` filter precisely for this) and nothing is
  materialized in the parent.
* :func:`partition_shards` — the deterministic round-robin assignment of
  shards to workers.  Partition granularity is always one engine per
  shard regardless of worker count, which is what makes the merged output
  worker-count invariant: ``workers=8`` merges the same per-shard streams
  as ``workers=1``.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.core.query import QueryRequest
from repro.engine.workload import (
    StreamingTraceSource,
    TraceSource,
    WorkloadSource,
)

if TYPE_CHECKING:
    from repro.engine.core import ServiceEngine

__all__ = [
    "ParallelRunInfo",
    "PartitionedTraceSource",
    "partition_shards",
    "partition_unsupported_reason",
    "split_trace",
]

#: Builds an iterator over the requests owned by the given shards
#: (``None`` = the full trace).  The filtered stream must yield exactly
#: the requests the full stream yields for those shards — same ids, same
#: times, same payloads — in the same (time-sorted, strictly-increasing
#: id) order.  ``iter_poisson_trace(..., shards=...)`` is the canonical
#: implementation.
TraceFactory = Callable[[tuple[int, ...] | None], Iterable[QueryRequest]]


@dataclass(frozen=True)
class ParallelRunInfo:
    """How one engine run was (or was not) parallelized.

    Attributes:
        workers: worker processes that actually ran partitions (0 when the
            run fell back to the single-process oracle).
        partitions: per-shard partitions that were served (0 on fallback).
        fallback_reason: why the run stayed single-process (``None`` when
            it was partitioned).
        worker_seconds: wall-clock seconds each worker spent serving its
            partitions — the per-worker timing counters of the parallel
            benchmarks.
    """

    workers: int
    partitions: int
    fallback_reason: str | None
    worker_seconds: tuple[float, ...]


class _FactoryStream:
    """A re-iterable view over one factory's (possibly filtered) stream."""

    def __init__(self, factory: TraceFactory, shards: tuple[int, ...] | None) -> None:
        self._factory = factory
        self._shards = shards

    def __iter__(self) -> Iterator[QueryRequest]:
        last_id: int | None = None
        for request in self._factory(self._shards):
            if last_id is not None and request.query_id <= last_id:
                raise ValueError(
                    f"partitioned trace factory yielded query_id "
                    f"{request.query_id} after {last_id}; partitioned streams "
                    "must carry strictly increasing ids (ids key the "
                    "per-request results fleet-wide)"
                )
            last_id = request.query_id
            yield request


class PartitionedTraceSource(StreamingTraceSource):
    """A streaming trace whose per-shard partitions can be regenerated.

    Wraps a :data:`TraceFactory`.  Served single-process it behaves
    exactly like ``StreamingTraceSource(factory(None))`` — one pending
    arrival, O(1) memory — but it is also *restartable* (each run
    re-invokes the factory) and *partitionable*: the parallel engine calls
    :meth:`for_shards` in each worker so every partition's requests are
    generated inside the worker that serves them, and the parent never
    materializes anything.

    The factory must yield requests in nondecreasing ``request_time``
    order with strictly increasing ``query_id`` (checked lazily as the
    stream is consumed), and the filtered stream must reproduce the full
    stream's requests for the selected shards byte for byte — the
    contract the ``shards=`` parameter of
    :func:`repro.workloads.generators.iter_poisson_trace` /
    :func:`~repro.workloads.generators.iter_bursty_trace` implements.
    """

    def __init__(self, factory: TraceFactory) -> None:
        self.factory = factory
        super().__init__(_FactoryStream(factory, None))

    def shard_requests(self, shards: Sequence[int]) -> Iterator[QueryRequest]:
        """The checked request stream of the given shards' partition."""
        return iter(_FactoryStream(self.factory, tuple(int(s) for s in shards)))

    def for_shards(self, shards: Sequence[int]) -> StreamingTraceSource:
        """A streaming source over just the given shards' requests."""
        return StreamingTraceSource(
            _FactoryStream(self.factory, tuple(int(s) for s in shards))
        )


def partition_shards(num_shards: int, workers: int) -> list[list[int]]:
    """Round-robin assignment of shard indices to workers.

    Deterministic and independent of anything but the two counts; empty
    groups (more workers than shards) are dropped.
    """
    if num_shards < 1 or workers < 1:
        raise ValueError("num_shards and workers must be >= 1")
    groups = [list(range(worker, num_shards, workers)) for worker in range(workers)]
    return [group for group in groups if group]


def split_trace(
    requests: Sequence[QueryRequest], shard_map: Any
) -> list[list[QueryRequest]]:
    """Partition a time-sorted trace by owning shard, validating like the oracle.

    Replays exactly the per-request checks the single-process engine
    performs, in exactly its order — negative arrival times for the whole
    trace first (``submit`` refuses them all before any arrival is
    processed), then per arrival in time order: duplicate ids, missing
    amplitudes, fidelity-SLO range, and the shard map's own
    shard-spanning-superposition refusal.  A trace that raises on the
    oracle path raises the identical error here, before any worker is
    forked.

    Args:
        requests: the trace in ``(request_time, query_id)`` order (a
            :class:`~repro.engine.workload.TraceSource`'s ``requests``).
        shard_map: the fleet's shard map (``route`` decides ownership).

    Returns:
        One bucket per shard, each preserving the trace order.
    """
    for request in requests:
        if request.request_time < 0:
            raise ValueError(
                f"request {request.query_id} has negative request_time "
                f"{request.request_time}; arrivals must be at time >= 0"
            )
    buckets: list[list[QueryRequest]] = [
        [] for _ in range(shard_map.num_shards)
    ]
    seen: set[int] = set()
    for request in requests:
        if request.query_id in seen:
            raise ValueError(
                f"duplicate query_id {request.query_id} in trace; "
                "query ids key the per-request results and must be unique"
            )
        seen.add(request.query_id)
        if request.address_amplitudes is None:
            raise ValueError("service requests require address amplitudes")
        if request.min_fidelity is not None and not 0.0 < request.min_fidelity <= 1.0:
            raise ValueError("min_fidelity must be in (0, 1]")
        shard, _ = shard_map.route(request.address_amplitudes)
        buckets[shard].append(request)
    return buckets


def partition_unsupported_reason(
    engine: ServiceEngine, source: WorkloadSource
) -> str | None:
    """Why this run cannot be partitioned exactly (``None`` when it can).

    Partitioned execution must be *bit-identical* to the single-process
    oracle, so anything that couples shards forces a fallback.  The
    returned string is recorded on the report's
    :class:`ParallelRunInfo.fallback_reason` so a fallback is always
    observable, never silent.
    """
    if isinstance(source, (TraceSource, PartitionedTraceSource)):
        pass
    elif isinstance(source, StreamingTraceSource):
        return (
            "a plain StreamingTraceSource is a one-shot iterator the parent "
            "cannot split; wrap the trace factory in a PartitionedTraceSource"
        )
    else:
        return (
            f"{type(source).__name__} paces arrivals on cross-shard "
            "completion feedback and cannot be partitioned"
        )
    fleet = engine.fleet
    placement = getattr(fleet, "placement", None)
    if placement != "interleaved":
        return (
            f"placement {placement!r} lets a query run on any replica; only "
            "interleaved fleets pin every request to one shard"
        )
    if engine.autoscaler is not None:
        return "autoscaling mutates the fleet mid-run across shards"
    if engine.sink is not None:
        return (
            "an external record sink observes records in global completion "
            "order"
        )
    if len(fleet.shards) < 2:
        return "a single-shard fleet has nothing to partition"
    if hasattr(fleet.policy, "_rng"):
        return (
            f"admission policy {type(fleet.policy).__name__} draws from "
            "shared random state, coupling shards' admission orders"
        )
    return None
