"""QRAM serving layer: multi-backend fleet, sharded, batched, policy-driven.

* :mod:`repro.service.sharding` — placement maps: address-interleaved
  sharding of the global address space, or full replication for
  shortest-queue placement.
* :mod:`repro.service.service` — :class:`QRAMService`, a thin front-end
  over the discrete-event engine (:mod:`repro.engine`): open-loop traces
  via :meth:`~QRAMService.serve`, closed-loop clients / SLO-bounded queues
  / elastic fleets via :meth:`~QRAMService.serve_workload`, pluggable
  admission policy (:mod:`repro.scheduling.policy`), per-tenant /
  per-shard / per-backend statistics.  Each shard is any registered
  architecture (Fat-Tree, BB, Virtual, D-Fat-Tree, D-BB) behind the
  :class:`repro.backends.QRAMBackend` protocol.
"""

from repro.service.service import PLACEMENTS, QRAMService, ServiceReport
from repro.service.sharding import (
    ANY_SHARD,
    InterleavedShardMap,
    ReplicatedShardMap,
)

__all__ = [
    "QRAMService",
    "ServiceReport",
    "InterleavedShardMap",
    "ReplicatedShardMap",
    "ANY_SHARD",
    "PLACEMENTS",
]
