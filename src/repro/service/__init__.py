"""QRAM serving layer: multi-shard, batched, policy-driven traffic front-end.

* :mod:`repro.service.sharding` — address-interleaved sharding of the
  global address space over independent Fat-Tree QRAM shards.
* :mod:`repro.service.service` — the :class:`QRAMService` event loop:
  trace admission, per-shard pipeline windows of up to ``log2(N/K)``
  queries, pluggable scheduling policy, per-tenant statistics.
"""

from repro.service.service import QRAMService, ServiceReport
from repro.service.sharding import InterleavedShardMap

__all__ = [
    "QRAMService",
    "ServiceReport",
    "InterleavedShardMap",
]
