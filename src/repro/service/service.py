"""Traffic-facing QRAM serving layer (multi-backend, sharded, policy-driven).

A :class:`QRAMService` owns a fleet of execution backends — one per shard,
each an arbitrary registered architecture (Fat-Tree, BB, Virtual,
D-Fat-Tree, D-BB) built through
:func:`repro.baselines.registry.build_backend` — and drives an event loop
that batches queued :class:`repro.core.query.QueryRequest` traces into
per-backend pipeline windows.

Placement is pluggable: address-interleaved sharding
(:class:`repro.service.sharding.InterleavedShardMap`; a query's address
superposition pins it to one shard) or full replication with
shortest-queue placement (:class:`~repro.service.sharding.ReplicatedShardMap`).
Admission order within a queue is an
:class:`repro.scheduling.policy.AdmissionPolicy` (FIFO — provably
latency-optimal, Sec. A.2 — LIFO, random, or priority); the deprecated
:class:`repro.scheduling.fifo.SchedulingPolicy` enum is still accepted.

Each gate-level backend reuses one cached executor, so schedules, lowered
gate sequences and admission intervals are derived once per memory image
and hit their memoized values on every window — the schedule-cache fast
path measured by ``benchmarks/bench_service_throughput.py`` for both the
Fat-Tree and BB backends.

All service times are raw circuit layers on one global clock; per-tenant /
per-shard / per-backend summaries come from
:mod:`repro.metrics.service_stats`.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.baselines.registry import build_backend
from repro.core.query import QueryRequest
from repro.metrics.service_stats import (
    ServedQuery,
    ServiceStats,
    WindowRecord,
    summarize_service,
)
from repro.scheduling.policy import AdmissionPolicy, as_policy
from repro.service.sharding import (
    ANY_SHARD,
    InterleavedShardMap,
    ReplicatedShardMap,
)

#: Valid placement modes for the service fleet.
PLACEMENTS = ("interleaved", "shortest-queue")


@dataclass
class ServiceReport:
    """Everything the serving loop observed while draining one trace.

    Attributes:
        served: one record per completed query, in completion order.
        windows: one record per executed pipeline window.
        stats: aggregated per-tenant / per-shard / per-backend statistics.
        outputs: per-query output amplitudes over global ``(address, bus)``
            pairs (empty when serving timing-only).
    """

    served: list[ServedQuery]
    windows: list[WindowRecord]
    stats: ServiceStats
    outputs: dict[int, dict[tuple[int, int], complex]] = field(default_factory=dict)

    def result_for(self, query_id: int) -> ServedQuery:
        """The served record of one query id."""
        for record in self.served:
            if record.query_id == query_id:
                return record
        raise KeyError(query_id)


class QRAMService:
    """A fleet of QRAM backends serving query traffic.

    Args:
        capacity: global address-space size ``N`` (power of two).
        num_shards: number of shards in the fleet.
        data: global classical memory contents (defaults to zeros).
        policy: admission order among queued requests per shard — an
            :class:`AdmissionPolicy`, a policy name ("fifo" / "lifo" /
            "random" / "priority"), or a deprecated
            :class:`repro.scheduling.fifo.SchedulingPolicy` member.
        window_size: maximum queries batched into one pipeline window.
            Capped per shard at the backend's query parallelism: the
            architecture cannot pipeline more queries concurrently, and
            oversized windows only grow the simulated state exponentially.
        functional: when True every window runs on the backend's functional
            path and output amplitudes / fidelities are reported; when
            False the service is timing-only (same schedule, no state
            evolution).
        seed: RNG seed for the random policy.
        architecture: architecture served by every shard (any name from
            :func:`repro.baselines.registry.backend_names`).
        architectures: per-shard architecture names (a heterogeneous
            fleet); overrides ``architecture`` and must have one entry per
            shard.
        placement: ``"interleaved"`` (address-interleaved shards; queries
            are pinned to the shard owning their addresses) or
            ``"shortest-queue"`` (every shard replicates the full memory
            and each query is placed on the least-loaded shard).
    """

    def __init__(
        self,
        capacity: int,
        num_shards: int = 2,
        data: Sequence[int] | None = None,
        policy: AdmissionPolicy | object = "fifo",
        window_size: int | None = None,
        functional: bool = True,
        seed: int = 0,
        architecture: str = "Fat-Tree",
        architectures: Sequence[str] | None = None,
        placement: str = "interleaved",
    ) -> None:
        if placement not in PLACEMENTS:
            raise ValueError(
                f"unknown placement {placement!r}; expected one of {PLACEMENTS}"
            )
        self.placement = placement
        if placement == "interleaved":
            self.shard_map = InterleavedShardMap(capacity, num_shards)
        else:
            self.shard_map = ReplicatedShardMap(capacity, num_shards)

        if architectures is None:
            architectures = [architecture] * num_shards
        elif len(architectures) != num_shards:
            raise ValueError(
                f"architectures must name one backend per shard "
                f"({len(architectures)} names for {num_shards} shards)"
            )

        memory = [0] * capacity if data is None else [int(x) & 1 for x in data]
        if len(memory) != capacity:
            raise ValueError("data length must equal capacity")
        self.shards = [
            build_backend(
                name,
                self.shard_map.shard_capacity,
                self.shard_map.shard_data(memory, shard),
            )
            for shard, name in enumerate(architectures)
        ]
        self.architectures = [backend.name for backend in self.shards]
        self.policy = as_policy(policy, seed=seed)
        if window_size is not None and window_size < 1:
            raise ValueError("window_size must be >= 1")
        self.window_sizes = [
            backend.query_parallelism
            if window_size is None
            else max(1, min(window_size, backend.query_parallelism))
            for backend in self.shards
        ]
        self.functional = functional

    # -------------------------------------------------------------- structure
    @property
    def capacity(self) -> int:
        return self.shard_map.capacity

    @property
    def num_shards(self) -> int:
        return self.shard_map.num_shards

    @property
    def window_size(self) -> int:
        """Largest pipeline window any shard in the fleet batches."""
        return max(self.window_sizes)

    @property
    def query_parallelism(self) -> int:
        """Concurrent queries the whole fleet sustains (sum over shards)."""
        return sum(backend.query_parallelism for backend in self.shards)

    def write_memory(self, address: int, value: int) -> None:
        """Update one global memory cell (routed to every owning shard)."""
        local = self.shard_map.local_address(address)
        for shard in self.shard_map.owners(address):
            self.shards[shard].write_memory(local, value)

    # ---------------------------------------------------------------- serving
    def serve(
        self, requests: Sequence[QueryRequest], clops: float = 1.0e6
    ) -> ServiceReport:
        """Drain a trace of query requests and report serving statistics.

        The event loop advances a global raw-layer clock over request
        arrivals and shard-free events.  Whenever a shard is idle and has
        queued requests, up to its window size of them (chosen by the
        admission policy) are batched into one pipeline window; the shard
        is busy until the window fully drains.

        Args:
            requests: query requests; each must carry an address
                superposition (shard-aligned under interleaved placement)
                and an arrival ``request_time`` in raw layers.
            clops: hardware clock used for the queries-per-second numbers.
        """
        if not requests:
            raise ValueError("at least one request is required")
        pending = sorted(requests, key=lambda r: (r.request_time, r.query_id))
        routed: dict[int, tuple[int, dict[int, complex]]] = {}
        for request in pending:
            if request.address_amplitudes is None:
                raise ValueError("service requests require address amplitudes")
            if request.query_id in routed:
                raise ValueError(
                    f"duplicate query_id {request.query_id} in trace; "
                    "query ids key the per-request results and must be unique"
                )
            routed[request.query_id] = self.shard_map.route(request.address_amplitudes)

        queues: list[list[QueryRequest]] = [[] for _ in range(self.num_shards)]
        free_at = [0.0] * self.num_shards
        max_depth = {shard: 0 for shard in range(self.num_shards)}
        served: list[ServedQuery] = []
        windows: list[WindowRecord] = []
        outputs: dict[int, dict[tuple[int, int], complex]] = {}
        index = 0

        while index < len(pending) or any(queues):
            candidates = []
            if index < len(pending):
                candidates.append(pending[index].request_time)
            for shard, queue in enumerate(queues):
                if queue:
                    candidates.append(free_at[shard])
            now = max(0.0, min(candidates))

            while index < len(pending) and pending[index].request_time <= now:
                request = pending[index]
                shard = routed[request.query_id][0]
                if shard == ANY_SHARD:
                    shard = self._shortest_queue(queues, free_at, now)
                queues[shard].append(request)
                max_depth[shard] = max(max_depth[shard], len(queues[shard]))
                index += 1

            for shard, queue in enumerate(queues):
                if queue and free_at[shard] <= now:
                    batch = self.policy.select(queue, self.window_sizes[shard], now)
                    window, records = self._execute_window(
                        shard, batch, admit=now, routed=routed, outputs=outputs
                    )
                    windows.append(window)
                    served.extend(records)
                    free_at[shard] = now + window.total_layers

        served.sort(key=lambda s: (s.finish_layer, s.query_id))
        stats = summarize_service(served, windows, max_depth, clops=clops)
        return ServiceReport(
            served=served, windows=windows, stats=stats, outputs=outputs
        )

    @staticmethod
    def _shortest_queue(
        queues: Sequence[Sequence[QueryRequest]],
        free_at: Sequence[float],
        now: float,
    ) -> int:
        """Least-loaded shard: fewest queued requests, then earliest free."""
        return min(
            range(len(queues)),
            key=lambda shard: (len(queues[shard]), max(free_at[shard], now), shard),
        )

    def _execute_window(
        self,
        shard: int,
        batch: list[QueryRequest],
        admit: float,
        routed: dict[int, tuple[int, dict[int, complex]]],
        outputs: dict[int, dict[tuple[int, int], complex]],
    ) -> tuple[WindowRecord, list[ServedQuery]]:
        """Run one pipeline window on one backend, at absolute layer ``admit``.

        The backend receives shard-local requests (translated address
        superpositions) and renumbers them to window slots internally, so
        its schedule and lowering caches are shared across every window of
        the trace.
        """
        backend = self.shards[shard]
        local_requests = [
            QueryRequest(
                query_id=request.query_id,
                address_amplitudes=routed[request.query_id][1],
                request_time=request.request_time,
                qpu=request.qpu,
                initial_bus=request.initial_bus,
                priority=request.priority,
            )
            for request in batch
        ]
        result = backend.run_window(local_requests, functional=self.functional)

        records: list[ServedQuery] = []
        for slot, request in enumerate(batch):
            if result.outputs[slot] is not None:
                outputs[request.query_id] = self.shard_map.to_global_outputs(
                    shard, result.outputs[slot]
                )
            records.append(
                ServedQuery(
                    query_id=request.query_id,
                    tenant=request.qpu,
                    shard=shard,
                    request_time=request.request_time,
                    admit_layer=admit,
                    start_layer=admit + result.start_offsets[slot],
                    finish_layer=admit + result.finish_offsets[slot],
                    fidelity=result.fidelities[slot],
                    architecture=backend.name,
                )
            )
        window = WindowRecord(
            shard=shard,
            admit_layer=admit,
            batch_size=len(batch),
            interval=result.interval,
            total_layers=result.total_layers,
            architecture=backend.name,
        )
        return window, records
