"""Traffic-facing QRAM serving layer (multi-backend, sharded, policy-driven).

A :class:`QRAMService` owns a fleet of execution backends — one per shard,
each an arbitrary registered architecture (Fat-Tree, BB, Virtual,
D-Fat-Tree, D-BB) built through
:func:`repro.baselines.registry.build_backend` — and serves traffic through
the discrete-event engine in :mod:`repro.engine`: every run is a heap of
typed events on one virtual clock, whether the workload is an open-loop
trace (:meth:`QRAMService.serve`) or closed-loop clients, SLO-bounded
queues and elastic fleets (:meth:`QRAMService.serve_workload`).

Placement is pluggable: address-interleaved sharding
(:class:`repro.service.sharding.InterleavedShardMap`; a query's address
superposition pins it to one shard) or full replication with
shortest-queue placement (:class:`~repro.service.sharding.ReplicatedShardMap`).
Admission order within a queue is an
:class:`repro.scheduling.policy.AdmissionPolicy` (FIFO — provably
latency-optimal, Sec. A.2 — LIFO, random, priority, or EDF for
deadline-carrying traffic); the deprecated
:class:`repro.scheduling.fifo.SchedulingPolicy` enum is still accepted.

Each gate-level backend reuses one cached executor, so schedules, lowered
gate sequences and admission intervals are derived once per memory image
and hit their memoized values on every window — the schedule-cache fast
path measured by ``benchmarks/bench_service_throughput.py`` for both the
Fat-Tree and BB backends.

All service times are raw circuit layers on one global clock; per-tenant /
per-shard / per-backend summaries come from
:mod:`repro.metrics.service_stats`.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.baselines.registry import build_backend
from repro.core.query import QueryRequest
from repro.engine.core import AutoscalerConfig, ServiceEngine, ServiceReport
from repro.engine.workload import TraceSource, WorkloadSource
from repro.scheduling.policy import AdmissionPolicy, as_policy
from repro.schedule_cache import default_registry
from repro.service.sharding import (
    InterleavedShardMap,
    ReplicatedShardMap,
)

__all__ = ["PLACEMENTS", "QRAMService", "ServiceReport"]

#: Valid placement modes for the service fleet.
PLACEMENTS = ("interleaved", "shortest-queue")


class QRAMService:
    """A fleet of QRAM backends serving query traffic.

    Args:
        capacity: global address-space size ``N`` (power of two).
        num_shards: number of shards in the fleet.
        data: global classical memory contents (defaults to zeros).
        policy: admission order among queued requests per shard — an
            :class:`AdmissionPolicy`, a policy name ("fifo" / "lifo" /
            "random" / "priority" / "edf"), or a deprecated
            :class:`repro.scheduling.fifo.SchedulingPolicy` member.
        window_size: maximum queries batched into one pipeline window.
            Capped per shard at the backend's query parallelism: the
            architecture cannot pipeline more queries concurrently, and
            oversized windows only grow the simulated state exponentially.
        functional: when True every window runs on the backend's functional
            path and output amplitudes / fidelities are reported; when
            False the service is timing-only (same schedule, no state
            evolution).
        seed: RNG seed for the random policy.
        architecture: architecture served by every shard (any name from
            :func:`repro.baselines.registry.backend_names`, optionally
            with a QEC-distance suffix: ``"Fat-Tree@d3"`` serves encoded
            logical queries).
        architectures: per-shard architecture names (a heterogeneous
            fleet, e.g. bare and encoded replicas side by side); overrides
            ``architecture`` and must have one entry per shard.
        placement: ``"interleaved"`` (address-interleaved shards; queries
            are pinned to the shard owning their addresses) or
            ``"shortest-queue"`` (every shard replicates the full memory
            and each query is placed on the least-loaded shard).
        parameters: optional
            :class:`~repro.hardware.parameters.HardwareParameters` noise
            model shared by every shard's predicted fidelities (defaults
            to the paper's parameter set).
    """

    def __init__(
        self,
        capacity: int,
        num_shards: int = 2,
        data: Sequence[int] | None = None,
        policy: AdmissionPolicy | object = "fifo",
        window_size: int | None = None,
        functional: bool = True,
        seed: int = 0,
        architecture: str = "Fat-Tree",
        architectures: Sequence[str] | None = None,
        placement: str = "interleaved",
        parameters=None,
    ) -> None:
        if placement not in PLACEMENTS:
            raise ValueError(
                f"unknown placement {placement!r}; expected one of {PLACEMENTS}"
            )
        self.placement = placement
        if placement == "interleaved":
            self.shard_map = InterleavedShardMap(capacity, num_shards)
        else:
            self.shard_map = ReplicatedShardMap(capacity, num_shards)

        if architectures is None:
            architectures = [architecture] * num_shards
        elif len(architectures) != num_shards:
            raise ValueError(
                f"architectures must name one backend per shard "
                f"({len(architectures)} names for {num_shards} shards)"
            )

        memory = [0] * capacity if data is None else [int(x) & 1 for x in data]
        if len(memory) != capacity:
            raise ValueError("data length must equal capacity")
        # Kept for replicas built later (autoscaling must not fall back to
        # the default noise model when the fleet was configured otherwise).
        self.parameters = parameters
        self.shards = [
            build_backend(
                name,
                self.shard_map.shard_capacity,
                self.shard_map.shard_data(memory, shard),
                parameters=parameters,
            )
            for shard, name in enumerate(architectures)
        ]
        self.architectures = [backend.name for backend in self.shards]
        # Warm the process-wide schedule-cache registry at fleet build:
        # identical shards resolve to one shared executor, and worker
        # processes forked later inherit the warm table copy-on-write.
        default_registry().prewarm(self.shards)
        self.policy = as_policy(policy, seed=seed)
        if window_size is not None and window_size < 1:
            raise ValueError("window_size must be >= 1")
        self.requested_window_size = window_size
        self.window_sizes = [
            backend.query_parallelism
            if window_size is None
            else max(1, min(window_size, backend.query_parallelism))
            for backend in self.shards
        ]
        self.functional = functional

    # -------------------------------------------------------------- structure
    @property
    def capacity(self) -> int:
        return self.shard_map.capacity

    @property
    def num_shards(self) -> int:
        return self.shard_map.num_shards

    @property
    def window_size(self) -> int:
        """Largest pipeline window any shard in the fleet batches."""
        return max(self.window_sizes)

    @property
    def query_parallelism(self) -> int:
        """Concurrent queries the whole fleet sustains (sum over shards)."""
        return sum(backend.query_parallelism for backend in self.shards)

    def write_memory(self, address: int, value: int) -> None:
        """Update one global memory cell (routed to every owning shard)."""
        local = self.shard_map.local_address(address)
        for shard in self.shard_map.owners(address):
            self.shards[shard].write_memory(local, value)

    # ---------------------------------------------------------------- serving
    def serve(
        self, requests: Sequence[QueryRequest], clops: float = 1.0e6
    ) -> ServiceReport:
        """Drain an open-loop trace of query requests (compatibility surface).

        A thin wrapper over the discrete-event engine: the trace becomes a
        :class:`repro.engine.TraceSource` and the engine advances one
        virtual clock over arrival / window / drain events — reproducing
        the historical batch-window loop exactly (same admission times,
        same reports).

        Args:
            requests: query requests; each must carry an address
                superposition (shard-aligned under interleaved placement)
                and an arrival ``request_time`` in raw layers.
            clops: hardware clock used for the queries-per-second numbers.
        """
        return ServiceEngine(self).run(TraceSource(requests), clops=clops)

    def serve_workload(
        self,
        source: WorkloadSource,
        *,
        clops: float = 1.0e6,
        max_queue_depth: int | None = None,
        shed_expired: bool = False,
        autoscaler: AutoscalerConfig | None = None,
        max_distillation_copies: int = 1,
        retention: str = "full",
        sample_size: int = 1024,
        sample_seed: int = 0,
        telemetry_interval: float | None = None,
        sink=None,
        workers: int | None = None,
        profile: bool | None = None,
    ) -> ServiceReport:
        """Serve any workload source with the full engine surface.

        Args:
            source: open-loop trace (:class:`repro.engine.TraceSource`,
                lazily via :class:`repro.engine.StreamingTraceSource`) or
                closed-loop clients (:class:`repro.engine.ClosedLoopSource`).
            clops: hardware clock used for the queries-per-second numbers.
            max_queue_depth: bounded per-shard queues — arrivals that find
                their queue full are rejected and accounted in
                ``stats.rejected_queries``.
            shed_expired: shed queued requests whose deadline has passed
                (accounted in ``stats.shed_queries``).
            autoscaler: queue-depth-watermark elastic scaling (requires
                ``placement="shortest-queue"``).
            max_distillation_copies: parallel-copy budget per query for the
                virtual-distillation fidelity retry (1 disables it); see
                :class:`repro.engine.ServiceEngine`.
            retention: per-request record policy — ``"full"`` (keep every
                record; the historical batch statistics, byte for byte),
                ``"sampled"`` (a fixed-size reservoir per record stream)
                or ``"none"`` (records dropped, streaming statistics only:
                memory independent of request count).
            sample_size: reservoir capacity under ``retention="sampled"``.
            sample_seed: RNG seed of the reservoir sampler.
            telemetry_interval: emit one time-windowed
                :class:`~repro.metrics.streaming.IntervalStats` every this
                many raw layers (the report's ``telemetry`` series).
            sink: optional extra :class:`~repro.metrics.sinks.RecordSink`
                (e.g. a :class:`~repro.metrics.sinks.JsonlSink`) that
                receives every record regardless of retention.
            workers: partitioned parallel serving — ``N >= 1`` serves the
                shards in up to ``N`` forked worker processes and merges
                the events back deterministically (bit-identical to
                ``workers=1``); unpartitionable configurations fall back
                to the single-process engine with the reason on
                ``report.parallel``.  ``0`` forces single-process;
                ``None`` defers to the ``REPRO_WORKERS`` environment
                variable.  See :class:`repro.engine.ServiceEngine`.
            profile: hot-path stage profiling — the run lands a
                :class:`~repro.perf.profiler.StageProfile` table on the
                report's ``profile`` field (observational; the report is
                otherwise identical).  ``None`` defers to the
                ``REPRO_PROFILE`` environment variable.
        """
        engine = ServiceEngine(
            self,
            max_queue_depth=max_queue_depth,
            shed_expired=shed_expired,
            autoscaler=autoscaler,
            max_distillation_copies=max_distillation_copies,
            retention=retention,
            sample_size=sample_size,
            sample_seed=sample_seed,
            telemetry_interval=telemetry_interval,
            sink=sink,
            workers=workers,
            profile=profile,
        )
        return engine.run(source, clops=clops)
