"""Traffic-facing QRAM serving layer (multi-shard, batched, policy-driven).

The paper establishes that one Fat-Tree QRAM sustains ``log2(N)``
concurrent queries; this module turns that capability into a *service*: a
:class:`QRAMService` owns one or more Fat-Tree shards (address-interleaved
via :class:`repro.service.sharding.InterleavedShardMap`), accepts traces of
:class:`repro.core.query.QueryRequest` objects with arrival times, and
drives an event loop that batches queued requests into pipeline windows of
up to ``log2(N / K)`` queries per shard.  Admission order within a queue is
a pluggable :class:`repro.scheduling.fifo.SchedulingPolicy` (FIFO is
provably latency-optimal, Sec. A.2).

Each shard reuses one cached gate-level executor, so the relative schedule,
the lowered gate sequences and the minimum feasible admission interval are
derived once per memory image and hit their memoized values on every
window — the schedule-cache fast path measured by
``benchmarks/bench_service_throughput.py``.

All service times are raw circuit layers on one global clock; per-tenant
latency / queue-depth / utilization / bandwidth summaries come from
:mod:`repro.metrics.service_stats`.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.qram import FatTreeQRAM
from repro.core.query import QueryRequest
from repro.metrics.service_stats import (
    ServedQuery,
    ServiceStats,
    WindowRecord,
    summarize_service,
)
from repro.scheduling.fifo import SchedulingPolicy
from repro.service.sharding import InterleavedShardMap


@dataclass
class ServiceReport:
    """Everything the serving loop observed while draining one trace.

    Attributes:
        served: one record per completed query, in completion order.
        windows: one record per executed pipeline window.
        stats: aggregated per-tenant / per-shard statistics.
        outputs: per-query output amplitudes over global ``(address, bus)``
            pairs (empty when serving timing-only).
    """

    served: list[ServedQuery]
    windows: list[WindowRecord]
    stats: ServiceStats
    outputs: dict[int, dict[tuple[int, int], complex]] = field(default_factory=dict)

    def result_for(self, query_id: int) -> ServedQuery:
        """The served record of one query id."""
        for record in self.served:
            if record.query_id == query_id:
                return record
        raise KeyError(query_id)


class QRAMService:
    """A multi-shard Fat-Tree QRAM serving query traffic.

    Args:
        capacity: global address-space size ``N`` (power of two).
        num_shards: number of address-interleaved Fat-Tree shards.
        data: global classical memory contents (defaults to zeros).
        policy: admission order among queued requests per shard.
        window_size: maximum queries batched into one pipeline window.
            Defaults to — and is capped at — the shard's query parallelism
            ``log2(N / K)``: the architecture cannot pipeline more queries
            concurrently, and oversized windows only grow the simulated
            state exponentially.
        functional: when True every window runs on the gate-level executor
            and output amplitudes / fidelities are reported; when False the
            service is timing-only (same schedule, no state evolution).
        seed: RNG seed for the RANDOM policy.
    """

    def __init__(
        self,
        capacity: int,
        num_shards: int = 2,
        data: Sequence[int] | None = None,
        policy: SchedulingPolicy = SchedulingPolicy.FIFO,
        window_size: int | None = None,
        functional: bool = True,
        seed: int = 0,
    ) -> None:
        self.shard_map = InterleavedShardMap(capacity, num_shards)
        memory = [0] * capacity if data is None else [int(x) & 1 for x in data]
        if len(memory) != capacity:
            raise ValueError("data length must equal capacity")
        self.shards = [
            FatTreeQRAM(
                self.shard_map.shard_capacity,
                self.shard_map.shard_data(memory, shard),
            )
            for shard in range(num_shards)
        ]
        self.policy = policy
        parallelism = self.shards[0].query_parallelism
        if window_size is None:
            self.window_size = parallelism
        else:
            if window_size < 1:
                raise ValueError("window_size must be >= 1")
            self.window_size = min(window_size, parallelism)
        self.functional = functional
        self._rng = random.Random(seed)

    # -------------------------------------------------------------- structure
    @property
    def capacity(self) -> int:
        return self.shard_map.capacity

    @property
    def num_shards(self) -> int:
        return self.shard_map.num_shards

    @property
    def query_parallelism(self) -> int:
        """Concurrent queries the whole service sustains: ``K log2(N/K)``."""
        return sum(shard.query_parallelism for shard in self.shards)

    def write_memory(self, address: int, value: int) -> None:
        """Update one global memory cell (routed to its shard)."""
        shard = self.shard_map.shard_of(address)
        self.shards[shard].write_memory(self.shard_map.local_address(address), value)

    # ---------------------------------------------------------------- serving
    def serve(
        self, requests: Sequence[QueryRequest], clops: float = 1.0e6
    ) -> ServiceReport:
        """Drain a trace of query requests and report serving statistics.

        The event loop advances a global raw-layer clock over request
        arrivals and shard-free events.  Whenever a shard is idle and has
        queued requests, up to ``window_size`` of them (chosen by the
        admission policy) are batched into one pipeline window; the shard is
        busy until the window fully drains.

        Args:
            requests: query requests; each must carry a shard-aligned
                address superposition and an arrival ``request_time`` in raw
                layers.
            clops: hardware clock used for the queries-per-second numbers.
        """
        if not requests:
            raise ValueError("at least one request is required")
        pending = sorted(requests, key=lambda r: (r.request_time, r.query_id))
        routed: dict[int, tuple[int, dict[int, complex]]] = {}
        for request in pending:
            if request.address_amplitudes is None:
                raise ValueError("service requests require address amplitudes")
            if request.query_id in routed:
                raise ValueError(
                    f"duplicate query_id {request.query_id} in trace; "
                    "query ids key the per-request results and must be unique"
                )
            routed[request.query_id] = self.shard_map.route(request.address_amplitudes)

        queues: list[list[QueryRequest]] = [[] for _ in range(self.num_shards)]
        free_at = [0.0] * self.num_shards
        max_depth = {shard: 0 for shard in range(self.num_shards)}
        served: list[ServedQuery] = []
        windows: list[WindowRecord] = []
        outputs: dict[int, dict[tuple[int, int], complex]] = {}
        index = 0

        while index < len(pending) or any(queues):
            candidates = []
            if index < len(pending):
                candidates.append(pending[index].request_time)
            for shard, queue in enumerate(queues):
                if queue:
                    candidates.append(free_at[shard])
            now = max(0.0, min(candidates))

            while index < len(pending) and pending[index].request_time <= now:
                request = pending[index]
                shard = routed[request.query_id][0]
                queues[shard].append(request)
                max_depth[shard] = max(max_depth[shard], len(queues[shard]))
                index += 1

            for shard, queue in enumerate(queues):
                if queue and free_at[shard] <= now:
                    batch = self._pick_batch(queue)
                    window, records = self._execute_window(
                        shard, batch, admit=now, routed=routed, outputs=outputs
                    )
                    windows.append(window)
                    served.extend(records)
                    free_at[shard] = now + window.total_layers

        served.sort(key=lambda s: (s.finish_layer, s.query_id))
        stats = summarize_service(served, windows, max_depth, clops=clops)
        return ServiceReport(served=served, windows=windows, stats=stats, outputs=outputs)

    def _pick_batch(self, queue: list[QueryRequest]) -> list[QueryRequest]:
        """Remove up to ``window_size`` requests from a queue by policy."""
        count = min(self.window_size, len(queue))
        if self.policy is SchedulingPolicy.FIFO:
            batch = queue[:count]
            del queue[:count]
        elif self.policy is SchedulingPolicy.LIFO:
            batch = [queue.pop() for _ in range(count)]
        else:
            batch = [queue.pop(self._rng.randrange(len(queue))) for _ in range(count)]
        return batch

    def _execute_window(
        self,
        shard: int,
        batch: list[QueryRequest],
        admit: float,
        routed: dict[int, tuple[int, dict[int, complex]]],
        outputs: dict[int, dict[tuple[int, int], complex]],
    ) -> tuple[WindowRecord, list[ServedQuery]]:
        """Run one pipeline window on one shard, at absolute layer ``admit``.

        Requests are renumbered to window slots 0..k-1 before execution so
        the shard executor's schedule and lowering caches are shared across
        every window of the trace.
        """
        executor = self.shards[shard].cached_executor()
        interval = executor.minimum_feasible_interval(len(batch))
        lifetime = executor.relative_raw_latency()
        records: list[ServedQuery] = []

        if self.functional:
            local_requests = [
                QueryRequest(
                    query_id=slot,
                    address_amplitudes=routed[request.query_id][1],
                    request_time=request.request_time,
                    qpu=request.qpu,
                    initial_bus=request.initial_bus,
                )
                for slot, request in enumerate(batch)
            ]
            summary, window_outputs = executor.run_pipelined_queries(
                local_requests, interval=interval
            )
            total_layers = float(summary.total_layers)
            for slot, request in enumerate(batch):
                outputs[request.query_id] = self.shard_map.to_global_outputs(
                    shard, window_outputs[slot]
                )
                fidelity = executor.query_fidelity(
                    local_requests[slot], window_outputs[slot]
                )
                records.append(
                    self._record(shard, request, admit, slot, interval, lifetime, fidelity)
                )
        else:
            total_layers = float((len(batch) - 1) * interval + lifetime)
            for slot, request in enumerate(batch):
                records.append(
                    self._record(shard, request, admit, slot, interval, lifetime, None)
                )

        window = WindowRecord(
            shard=shard,
            admit_layer=admit,
            batch_size=len(batch),
            interval=interval,
            total_layers=total_layers,
        )
        return window, records

    @staticmethod
    def _record(
        shard: int,
        request: QueryRequest,
        admit: float,
        slot: int,
        interval: int,
        lifetime: int,
        fidelity: float | None,
    ) -> ServedQuery:
        start = admit + slot * interval + 1
        return ServedQuery(
            query_id=request.query_id,
            tenant=request.qpu,
            shard=shard,
            request_time=request.request_time,
            admit_layer=admit,
            start_layer=start,
            finish_layer=start + lifetime - 1,
            fidelity=fidelity,
        )
