"""Sharding / placement maps for the QRAM serving layer.

Two placements are supported:

* :class:`InterleavedShardMap` — a capacity-``N`` address space served by
  ``K`` shards assigns global address ``a`` to shard ``a mod K`` at local
  address ``a div K``: the classic low-order interleaving that spreads any
  address-local working set evenly across shards.  Each shard is an
  independent capacity-``N/K`` QRAM, so a query's address superposition
  must stay within one shard's address set (amplitudes entangled across
  physically independent QRAMs cannot be served without inter-shard
  operations); the trace generators in :mod:`repro.workloads` emit
  shard-aligned superpositions.
* :class:`ReplicatedShardMap` — every shard holds the full capacity-``N``
  memory.  Any query can run on any shard (``route`` returns
  :data:`ANY_SHARD` and the service picks one, e.g. shortest-queue), at the
  cost of ``K``-fold hardware and of mirroring every classical write.

Both maps expose the same surface: ``shard_capacity``, ``shard_data``,
``route``, ``owners`` / ``local_address`` (for writes) and
``to_global_outputs``.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.bucket_brigade.tree import validate_capacity

# The "any shard may serve this request" sentinel is hosted on the
# dependency-free query module so the engine that interprets it and the
# maps that return it never import each other.
from repro.core.query import ANY_SHARD

__all__ = [
    "ANY_SHARD",
    "InterleavedShardMap",
    "ReplicatedShardMap",
]


class InterleavedShardMap:
    """Low-order-interleaved mapping between global and shard addresses.

    Args:
        capacity: global address-space size ``N`` (power of two).
        num_shards: number of shards ``K`` (power of two >= 1; the per-shard
            capacity ``N / K`` must be at least 2).
    """

    def __init__(self, capacity: int, num_shards: int) -> None:
        validate_capacity(capacity)
        if num_shards < 1 or (num_shards & (num_shards - 1)) != 0:
            raise ValueError("num_shards must be a power of two >= 1")
        if capacity // num_shards < 2:
            raise ValueError(
                f"{num_shards} shards leave fewer than 2 addresses per shard"
            )
        self.capacity = capacity
        self.num_shards = num_shards
        self.shard_capacity = capacity // num_shards

    def shard_of(self, address: int) -> int:
        """Shard owning a global address."""
        self._check(address)
        return address % self.num_shards

    def owners(self, address: int) -> list[int]:
        """Shards a classical write to this address must reach (exactly one)."""
        return [self.shard_of(address)]

    def local_address(self, address: int) -> int:
        """Address of a global address within its shard."""
        self._check(address)
        return address // self.num_shards

    def global_address(self, shard: int, local: int) -> int:
        """Global address of a shard-local address."""
        if not 0 <= shard < self.num_shards:
            raise ValueError(f"shard {shard} out of range")
        if not 0 <= local < self.shard_capacity:
            raise ValueError(f"local address {local} out of range")
        return local * self.num_shards + shard

    def shard_data(self, data: Sequence[int], shard: int) -> list[int]:
        """The slice of the global classical memory owned by one shard."""
        if len(data) != self.capacity:
            raise ValueError("data length must equal capacity")
        return [
            data[self.global_address(shard, local)]
            for local in range(self.shard_capacity)
        ]

    def route(
        self, address_amplitudes: Mapping[int, complex]
    ) -> tuple[int, dict[int, complex]]:
        """Route an address superposition to its shard.

        Returns:
            ``(shard, local_amplitudes)`` with every global address
            translated to the shard's local address space.

        Raises:
            ValueError: if the superposition spans more than one shard (the
                shards are physically independent QRAMs).
        """
        if not address_amplitudes:
            raise ValueError("empty address superposition")
        if len(address_amplitudes) == 1:
            # Single-address queries cannot span shards; skip the set
            # machinery the general validation needs.
            (address,) = address_amplitudes
            self._check(address)
            num_shards = self.num_shards
            return address % num_shards, {
                address // num_shards: address_amplitudes[address]
            }
        shards = {self.shard_of(a) for a in address_amplitudes}
        if len(shards) != 1:
            raise ValueError(
                f"address superposition spans shards {sorted(shards)}; "
                "queries must target a single shard"
            )
        shard = shards.pop()
        local = {
            self.local_address(a): amp for a, amp in address_amplitudes.items()
        }
        return shard, local

    def to_global_outputs(
        self, shard: int, outputs: Mapping[tuple[int, int], complex]
    ) -> dict[tuple[int, int], complex]:
        """Translate a shard's ``(local_address, bus)`` amplitudes back to
        global addresses."""
        return {
            (self.global_address(shard, local), bus): amp
            for (local, bus), amp in outputs.items()
        }

    def _check(self, address: int) -> None:
        if not 0 <= address < self.capacity:
            raise ValueError(f"address {address} out of range")


class ReplicatedShardMap:
    """Full-replication placement: every shard holds the whole memory.

    Queries are not pinned to a shard by their address — ``route`` returns
    :data:`ANY_SHARD` and the serving loop places the request (shortest
    queue); classical writes are mirrored into every shard.

    Args:
        capacity: global address-space size ``N`` (power of two).
        num_shards: number of full-capacity replicas (>= 1; unlike
            interleaving, any count is valid).
    """

    def __init__(self, capacity: int, num_shards: int) -> None:
        validate_capacity(capacity)
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.capacity = capacity
        self.num_shards = num_shards
        self.shard_capacity = capacity

    def owners(self, address: int) -> list[int]:
        """Writes must reach every replica."""
        self._check(address)
        return list(range(self.num_shards))

    def local_address(self, address: int) -> int:
        """Replicas use the global address space directly."""
        self._check(address)
        return address

    def shard_data(self, data: Sequence[int], shard: int) -> list[int]:
        """Every replica holds the full memory image."""
        if len(data) != self.capacity:
            raise ValueError("data length must equal capacity")
        if not 0 <= shard < self.num_shards:
            raise ValueError(f"shard {shard} out of range")
        return list(data)

    def route(
        self, address_amplitudes: Mapping[int, complex]
    ) -> tuple[int, dict[int, complex]]:
        """Validate a superposition; any replica may serve it.

        Returns:
            ``(ANY_SHARD, amplitudes)`` — the serving loop chooses the
            replica at admission time.
        """
        if not address_amplitudes:
            raise ValueError("empty address superposition")
        for address in address_amplitudes:
            self._check(address)
        return ANY_SHARD, dict(address_amplitudes)

    def to_global_outputs(
        self, shard: int, outputs: Mapping[tuple[int, int], complex]
    ) -> dict[tuple[int, int], complex]:
        """Replica outputs are already in the global address space."""
        return dict(outputs)

    def _check(self, address: int) -> None:
        if not 0 <= address < self.capacity:
            raise ValueError(f"address {address} out of range")
