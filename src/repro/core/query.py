"""Query request / result records shared by the pipeline model, the
scheduler and the gate-level executor."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from collections.abc import Mapping


#: Sentinel placement a shard map's ``route`` may return: the request can
#: run on any shard and the serving engine picks one (shortest queue) at
#: arrival time.  Defined on this dependency-free module so both the
#: placement maps (:mod:`repro.service.sharding`) and the engine
#: (:mod:`repro.engine.core`) can name it without importing each other.
ANY_SHARD = -1


class QueryStatus(enum.Enum):
    """Lifecycle of a query in a shared QRAM."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"


@dataclass
class QueryRequest:
    """A quantum query submitted to a shared QRAM.

    Attributes:
        query_id: unique identifier.
        address_amplitudes: address superposition to query (normalised by the
            executor); ``None`` for purely timing-level simulations.
        request_time: raw circuit layer at which the request arrives (used by
            the scheduler; 0 means "available from the start").
        qpu: identifier of the requesting QPU (for multi-QPU workloads).
        initial_bus: initial bus bit ``b`` (the query XORs data into it).
        priority: admission priority (higher is served first under the
            priority policy; ties fall back to arrival order).
        deadline: absolute raw layer by which the query should finish
            (``None`` for best-effort requests).  Drives the EDF admission
            policy and the deadline-miss / shed accounting of the serving
            engine.
        min_fidelity: lowest acceptable predicted query fidelity in
            ``(0, 1]`` (``None`` for best-effort requests).  The serving
            engine rejects the request when no placement — optionally
            boosted by virtual distillation — can meet the target, and
            counts served slots whose predicted fidelity falls short as
            fidelity-SLO misses.
    """

    query_id: int
    address_amplitudes: Mapping[int, complex] | None = None
    request_time: float = 0.0
    qpu: int = 0
    initial_bus: int = 0
    priority: int = 0
    deadline: float | None = None
    min_fidelity: float | None = None


@dataclass
class QueryResult:
    """Outcome of a query.

    All ``*_layers`` fields are raw circuit layers on the same time base as
    ``start_layer`` / ``finish_layer``; request-to-finish time is reported
    separately so that service latency (a pure layer count) is never mixed
    with the arrival clock of the request.

    Attributes:
        query_id: identifier of the originating request.
        start_layer: raw circuit layer at which the query entered the QRAM.
        finish_layer: raw circuit layer at which it completed.
        latency_layers: raw layers spent inside the QRAM, from admission to
            completion (``finish_layer - start_layer + 1``).
        request_time: arrival time of the originating request, in raw layers
            on the same clock as ``start_layer`` (0 when unknown).
        request_to_finish: raw layers from request arrival to completion,
            i.e. queueing delay plus service time
            (``finish_layer - request_time``).
        weighted_latency: latency in weighted circuit layers (fast layers
            count 1/8).
        amplitudes: output amplitudes over ``(address, bus)`` pairs, when a
            functional execution was performed.
        status: final status.
    """

    query_id: int
    start_layer: float
    finish_layer: float
    latency_layers: float
    request_time: float = 0.0
    request_to_finish: float = 0.0
    weighted_latency: float = 0.0
    amplitudes: dict[tuple[int, int], complex] = field(default_factory=dict)
    status: QueryStatus = QueryStatus.COMPLETED

    @property
    def service_layers(self) -> float:
        """Raw layers spent inside the QRAM (excludes queueing)."""
        return self.finish_layer - self.start_layer + 1

    @property
    def queue_delay_layers(self) -> float:
        """Raw layers the request waited before being admitted."""
        return self.start_layer - self.request_time


def ideal_query_output(
    data, address_amplitudes: Mapping[int, complex], initial_bus: int = 0
) -> dict[tuple[int, int], complex]:
    """Ideal normalised output of one query per the unitary of Eq. (1).

    This is the single implementation every executor and backend scores
    against: ``sum_i alpha_i |i>|b> -> sum_i alpha_i |i>|b XOR x_i>``.
    """
    if not address_amplitudes:
        raise ValueError("query carries no address amplitudes")
    norm = sum(abs(a) ** 2 for a in address_amplitudes.values()) ** 0.5
    return {
        (address, initial_bus ^ (int(data[address]) & 1)): amp / norm
        for address, amp in address_amplitudes.items()
    }


def output_fidelity(
    ideal: Mapping[tuple[int, int], complex],
    actual: Mapping[tuple[int, int], complex],
) -> float:
    """``|<ideal|actual>|^2`` between two output registers."""
    overlap = sum(amp.conjugate() * actual.get(key, 0.0) for key, amp in ideal.items())
    return abs(overlap) ** 2
