"""User-facing Fat-Tree QRAM.

``FatTreeQRAM`` is the main entry point of the library: it exposes the
architecture-level metrics of Tables 1-2 (qubits, parallelism, latency,
bandwidth), the pipeline model of Fig. 6 and the gate-level functional
execution of parallel queries.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.bucket_brigade.qram import QUBITS_PER_ROUTER
from repro.bucket_brigade.tree import validate_capacity
from repro.core.executor import FatTreeExecutor, PipelinedExecutionResult
from repro.core.fat_tree import FatTreeStructure
from repro.core.pipeline import (
    FatTreePipeline,
    fat_tree_amortized_query_latency,
    fat_tree_parallel_query_latency,
    fat_tree_raw_query_layers,
    fat_tree_single_query_latency,
)
from repro.core.query import QueryRequest
from repro.schedule_cache import default_registry, shared_executor


class FatTreeQRAM:
    """A capacity-``N`` Fat-Tree QRAM shared memory.

    Args:
        capacity: memory size ``N`` (power of two >= 2).
        data: optional initial classical memory contents (defaults to zeros).
    """

    name = "Fat-Tree"

    def __init__(self, capacity: int, data: Sequence[int] | None = None) -> None:
        self._n = validate_capacity(capacity)
        self._capacity = capacity
        self.structure = FatTreeStructure(capacity)
        self._data = [0] * capacity if data is None else [int(x) & 1 for x in data]
        if len(self._data) != capacity:
            raise ValueError("data length must equal capacity")
        self._executor: FatTreeExecutor | None = None

    # -------------------------------------------------------------- structure
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def address_width(self) -> int:
        return self._n

    @property
    def data(self) -> list[int]:
        return list(self._data)

    def write_memory(self, address: int, value: int) -> None:
        """Update one classical memory cell."""
        self._data[address] = int(value) & 1
        if self._executor is not None:
            self._executor = None
            default_registry().note_invalidation()

    def load_memory(self, data: Sequence[int]) -> None:
        """Replace the whole classical memory."""
        if len(data) != self._capacity:
            raise ValueError("data length must equal capacity")
        self._data = [int(x) & 1 for x in data]
        if self._executor is not None:
            self._executor = None
            default_registry().note_invalidation()

    # --------------------------------------------------------------- resources
    @property
    def num_routers(self) -> int:
        """Multiplexed routers: ``2N - 2 - log2(N)``."""
        return self.structure.num_routers

    @property
    def qubit_count(self) -> int:
        """Physical qubit count, ``16 N`` (Table 1: double a BB QRAM)."""
        return 2 * QUBITS_PER_ROUTER * self._capacity

    @property
    def query_parallelism(self) -> int:
        """Independent queries the architecture pipelines: ``log2(N)``."""
        return self._n

    # ----------------------------------------------------------------- timing
    @property
    def raw_query_layers(self) -> int:
        """Raw layers of a single query, ``10 n - 1`` (Fig. 6)."""
        return fat_tree_raw_query_layers(self._capacity)

    def single_query_latency(self) -> float:
        """Weighted single-query latency ``8.25 n - 0.125`` (Table 1)."""
        return fat_tree_single_query_latency(self._capacity)

    def parallel_query_latency(self, num_queries: int | None = None) -> float:
        """Weighted latency of pipelined queries (``16.5 n - 8.375`` for
        ``log N`` queries, Table 1)."""
        count = self._n if num_queries is None else num_queries
        return fat_tree_parallel_query_latency(self._capacity, count)

    def amortized_query_latency(self, num_queries: int | None = None) -> float:
        """Weighted amortized latency per query.

        With ``num_queries=None`` this is the steady-state value of Table 1
        (one query per pipeline interval, ``8.25``).  An explicit
        ``num_queries`` is honoured as the finite-horizon amortization
        ``parallel_query_latency(k) / k`` — which includes the one-time
        pipeline-fill cost and converges to 8.25 from above as ``k`` grows.
        """
        if num_queries is None:
            return fat_tree_amortized_query_latency(self._capacity)
        return fat_tree_parallel_query_latency(self._capacity, num_queries) / num_queries

    def pipeline(self, num_queries: int | None = None) -> FatTreePipeline:
        """Architectural pipeline schedule (Fig. 6) for ``num_queries``."""
        return FatTreePipeline(self._capacity, num_queries=num_queries)

    def bandwidth(self, clops: float = 1.0e6) -> float:
        """Query bandwidth in (bus) qubits per second (Table 2)."""
        return self.pipeline(1).bandwidth(clops)

    # -------------------------------------------------------------- functional
    def query(
        self,
        address_amplitudes: Mapping[int, complex],
        initial_bus: int = 0,
    ) -> dict[tuple[int, int], complex]:
        """Run one query on the gate-level executor and return its output."""
        request = QueryRequest(0, dict(address_amplitudes), initial_bus=initial_bus)
        _, outputs = self.parallel_queries([request])
        return outputs[0]

    def parallel_queries(
        self,
        requests: Sequence[QueryRequest],
        interval: int | None = None,
    ) -> tuple[PipelinedExecutionResult, dict[int, dict[tuple[int, int], complex]]]:
        """Execute several queries concurrently (query-level pipelining).

        Repeated calls reuse one cached executor, so the relative schedule,
        the lowered gate sequences and the minimum feasible interval are
        derived once per memory image instead of once per call.
        """
        return self.cached_executor().run_pipelined_queries(requests, interval=interval)

    def cached_executor(self) -> FatTreeExecutor:
        """The memoized gate-level executor for the current memory contents.

        The executor (and with it every schedule artefact it has memoized) is
        reused across queries and invalidated by classical memory writes.
        Executors are shared process-wide through the
        :class:`~repro.schedule_cache.ScheduleCacheRegistry`: every
        replica holding the same memory image — including autoscaled
        replicas and forked serving workers — resolves to one executor, so
        schedules and lowered gate sequences are derived once per image
        instead of once per replica.
        """
        if self._executor is None:
            self._executor = shared_executor(
                self.name,
                self._capacity,
                self._data,
                lambda: FatTreeExecutor(self._capacity, self._data),
            )
        return self._executor

    def executor(self) -> FatTreeExecutor:
        """A fresh gate-level executor bound to the current memory contents."""
        return FatTreeExecutor(self._capacity, self._data)
