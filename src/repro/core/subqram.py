"""The sub-component QRAM decomposition of a Fat-Tree (Fig. 5).

Looking only at the routers with a fixed label ``k``, a Fat-Tree QRAM is the
union of ``n`` Bucket-Brigade QRAMs of address widths ``1 .. n``: sub-QRAM
``k`` consists of routers ``(i, j, k)`` for ``i <= k`` and has address width
``k + 1``.  Only sub-QRAM ``n - 1`` reaches the classical data; the smaller
sub-QRAMs are transit stages that queries migrate through while being loaded
(up) and unloaded (down).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.fat_tree import FatTreeRouterId, FatTreeStructure


@dataclass(frozen=True)
class SubQRAM:
    """A single sub-component QRAM of a Fat-Tree.

    Attributes:
        structure: the parent Fat-Tree.
        label: the sub-QRAM label ``k``.
    """

    structure: FatTreeStructure
    label: int

    def __post_init__(self) -> None:
        if not 0 <= self.label < self.structure.address_width:
            raise ValueError(
                f"label {self.label} out of range for a capacity-"
                f"{self.structure.capacity} Fat-Tree"
            )

    @property
    def address_width(self) -> int:
        """Address width of this sub-QRAM: ``label + 1``."""
        return self.label + 1

    @property
    def capacity(self) -> int:
        """Leaf span of this sub-QRAM: ``2 ** (label + 1)``."""
        return 2 ** (self.label + 1)

    @property
    def depth(self) -> int:
        """Number of router levels (same as the address width)."""
        return self.label + 1

    @property
    def reaches_data(self) -> bool:
        """Only the largest sub-QRAM is coupled to the classical memory."""
        return self.label == self.structure.address_width - 1

    @property
    def num_routers(self) -> int:
        """Routers in this sub-QRAM: ``2**(label+1) - 1``."""
        return 2 ** (self.label + 1) - 1

    def routers(self) -> list[FatTreeRouterId]:
        """All routers of the sub-QRAM."""
        return list(self.structure.routers_with_label(self.label))

    def transient_router_level(self) -> int:
        """Level of the transient-storage routers (the bottom level)."""
        return self.label

    def neighbour_above(self) -> "SubQRAM | None":
        """The next larger sub-QRAM, if any."""
        if self.reaches_data:
            return None
        return SubQRAM(self.structure, self.label + 1)

    def neighbour_below(self) -> "SubQRAM | None":
        """The next smaller sub-QRAM, if any."""
        if self.label == 0:
            return None
        return SubQRAM(self.structure, self.label - 1)

    def swap_partner_levels(self) -> range:
        """Levels whose (input, router) qubits are exchanged when swapping
        this sub-QRAM with the next larger one: levels ``0 .. label``."""
        return range(self.label + 1)


def decompose(structure: FatTreeStructure) -> list[SubQRAM]:
    """All sub-component QRAMs of a Fat-Tree, smallest first."""
    return [SubQRAM(structure, k) for k in range(structure.address_width)]
