"""Gate-level execution of pipelined Fat-Tree QRAM queries.

The executor materialises the full multiplexed router tree as named qubits on
the sparse simulator and runs several queries *concurrently*: each query
follows a BB-style bit-pipelined gate schedule annotated with its current
sub-QRAM label, migrates between sub-QRAMs through explicit SWAP steps that
exchange the input and router qubits of adjacent labels, and performs data
retrieval through phase kickback on the leaf cells of sub-QRAM ``n - 1``.

Two levels of fidelity to the paper:

* every structural rule of Sec. 4 is honoured at the gate level — ops only
  use routers of the query's current label, transient routers are never
  routed through, migrations move only input/router qubits, queries exchange
  sub-QRAMs at shared swap layers;
* the steady-state admission interval is found by a static conflict search
  and is a small constant larger than the abstract model's 10 raw layers
  (see EXPERIMENTS.md); the abstract model in :mod:`repro.core.pipeline`
  carries the paper's exact latency accounting.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field, replace

from repro.bucket_brigade.instructions import (
    Instruction,
    InstructionKind,
    QubitNamer,
    lower_instruction,
)
from repro.bucket_brigade.schedule import _touched_locations
from repro.bucket_brigade.tree import validate_capacity
from repro.core.fat_tree import FatTreeStructure
from repro.core.pipeline import PIPELINE_INTERVAL
from repro.core.query import (
    QueryRequest,
    QueryResult,
    QueryStatus,
    ideal_query_output,
    output_fidelity,
)
from repro.sim.sparse import SparseState


@dataclass
class PipelinedExecutionResult:
    """Outcome of executing several pipelined queries at the gate level.

    Attributes:
        interval: admission interval (raw layers) actually used.
        total_layers: raw layers until the last query finished.
        per_query_raw_layers: raw layers each individual query took.
        results: per-query functional results (amplitudes and fidelity
            bookkeeping handled by the caller).
        max_concurrent: maximum number of queries simultaneously in flight.
    """

    interval: int
    total_layers: int
    per_query_raw_layers: int
    results: list[QueryResult] = field(default_factory=list)
    max_concurrent: int = 0


class FatTreeExecutor:
    """Gate-level executor for a capacity-``N`` Fat-Tree QRAM.

    Args:
        capacity: memory size ``N``.
        data: classical memory contents (one bit per address).
    """

    def __init__(self, capacity: int, data: Sequence[int]) -> None:
        self._n = validate_capacity(capacity)
        self._capacity = capacity
        if len(data) != capacity:
            raise ValueError(f"data must have {capacity} entries")
        self.data = [int(x) & 1 for x in data]
        self.structure = FatTreeStructure(capacity)
        self.namer: QubitNamer = self.structure.namer
        # Memoization of the static schedule artefacts: the relative schedule
        # only depends on (capacity, query id), the lowered gate sequence of
        # an instruction only on its (kind, query, item, level, label)
        # identity, and the minimum feasible interval only on the capacity —
        # none of them need to be re-derived on every run_pipelined_queries
        # call.
        self._schedule_cache: dict[int, list[Instruction]] = {}
        self._lowered_cache: dict[
            tuple[InstructionKind, int, int, int, int], list
        ] = {}
        self._min_interval_cache: int | None = None
        self._locations_cache: dict[Instruction, frozenset] = {}

    #: Distinct query ids whose schedules are kept memoized at once.
    _CACHE_LIMIT = 128

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def address_width(self) -> int:
        return self._n

    # --------------------------------------------------------- relative schedule
    def relative_schedule(self, query: int = 0) -> list[Instruction]:
        """Gate-level schedule of one query in its own (relative) raw layers.

        The gate ordering is the BB bit-pipelined schedule; sub-QRAM
        migrations are inserted just in time (right before the first gate
        that needs the larger sub-QRAM) and mirrored during unloading.

        The schedule is memoized: repeated calls (and repeated pipelined
        runs) return the same cached instruction list.  Schedules of
        different query ids share their structure and differ only in the
        ``query`` field, so they are derived from the query-0 schedule
        instead of being rebuilt.
        """
        cached = self._schedule_cache.get(query)
        if cached is not None:
            return cached
        if len(self._schedule_cache) >= self._CACHE_LIMIT:
            # Callers that keep minting fresh query ids (e.g. a long trace
            # driven through parallel_queries directly) must not grow the
            # per-id caches without bound; keep the structural query-0 entry
            # and evict the rest.
            base = self._schedule_cache.get(0)
            self._schedule_cache = {} if base is None else {0: base}
            self._lowered_cache = {
                key: ops for key, ops in self._lowered_cache.items() if key[1] == -1
            }
        if query != 0:
            schedule = [
                replace(instr, query=query) for instr in self.relative_schedule(0)
            ]
            self._schedule_cache[query] = schedule
            return schedule
        schedule = self._build_relative_schedule(query)
        self._schedule_cache[query] = schedule
        return schedule

    def _build_relative_schedule(self, query: int) -> list[Instruction]:
        n = self._n
        gate_instrs = self._bb_like_gate_schedule(query)
        instructions: list[Instruction] = []
        for instr in gate_instrs:
            g = instr.gate_layer
            label = self._label_at_gate(g)
            instructions.append(
                Instruction(
                    instr.kind,
                    query=query,
                    item=instr.item,
                    level=instr.level,
                    label=label,
                    raw_layer=self._raw_of_gate(g),
                    gate_layer=g,
                )
            )
        # Upward migrations (to label j, just before gate 4j).
        for j in range(1, n):
            instructions.append(
                Instruction(
                    InstructionKind.SWAP_MIGRATE,
                    query=query,
                    item=0,
                    level=j - 1,
                    label=j - 1,
                    raw_layer=self._raw_of_gate(4 * j - 1) + 1,
                )
            )
        # Data retrieval on the leaf cells of sub-QRAM n-1.
        instructions.append(
            Instruction(
                InstructionKind.CLASSICAL_GATES,
                query=query,
                item=0,
                level=n - 1,
                label=n - 1,
                raw_layer=self._raw_of_gate(4 * n) + 1,
            )
        )
        # Downward migrations (from label j, right after the last gate that
        # needs it — the mirror of the upward placement).
        for j in range(1, n):
            instructions.append(
                Instruction(
                    InstructionKind.SWAP_MIGRATE,
                    query=query,
                    item=0,
                    level=j - 1,
                    label=j - 1,
                    raw_layer=self._raw_of_gate(8 * n + 1 - 4 * j) + 1,
                )
            )
        instructions.sort(key=lambda i: (i.raw_layer, i.level, i.item))
        return instructions

    def relative_raw_latency(self) -> int:
        """Raw layers of one query in this realisation: ``10 n - 1``."""
        return self._raw_of_gate(8 * self._n)

    def _bb_like_gate_schedule(self, query: int) -> list[Instruction]:
        """The 8n-gate-layer item schedule (labels filled in later)."""
        n = self._n
        out: list[Instruction] = []

        def add(kind: InstructionKind, item: int, level: int, gate: int) -> None:
            out.append(
                Instruction(
                    kind,
                    query=query,
                    item=item,
                    level=level,
                    label=0,
                    raw_layer=gate,
                    gate_layer=gate,
                )
            )

        for m in range(1, n + 1):
            add(InstructionKind.LOAD, m, -1, 2 * m - 1)
            for i in range(m - 1):
                add(InstructionKind.ROUTE, m, i, 2 * m + 2 * i)
                add(InstructionKind.TRANSPORT, m, i, 2 * m + 2 * i + 1)
            add(InstructionKind.STORE, m, m - 1, 4 * m - 2)
        bus = n + 1
        add(InstructionKind.LOAD, bus, -1, 2 * n + 1)
        for i in range(n - 1):
            add(InstructionKind.ROUTE, bus, i, 2 * n + 2 * i + 2)
            add(InstructionKind.TRANSPORT, bus, i, 2 * n + 2 * i + 3)
        add(InstructionKind.ROUTE, bus, n - 1, 4 * n)

        inverse = {
            InstructionKind.LOAD: InstructionKind.UNLOAD,
            InstructionKind.ROUTE: InstructionKind.UNROUTE,
            InstructionKind.TRANSPORT: InstructionKind.UNTRANSPORT,
            InstructionKind.STORE: InstructionKind.UNSTORE,
        }
        mirrored = [
            Instruction(
                inverse[i.kind],
                query=query,
                item=i.item,
                level=i.level,
                label=0,
                raw_layer=8 * n + 1 - i.gate_layer,
                gate_layer=8 * n + 1 - i.gate_layer,
            )
            for i in out
        ]
        return out + mirrored

    def _ups_before_gate(self, g: int) -> int:
        """Upward migrations placed strictly before gate layer ``g``."""
        return sum(1 for j in range(1, self._n) if 4 * j - 1 < g)

    def _downs_before_gate(self, g: int) -> int:
        """Downward migrations placed strictly before gate layer ``g``."""
        n = self._n
        return sum(1 for j in range(1, n) if 8 * n + 1 - 4 * j < g)

    def _raw_of_gate(self, g: int) -> int:
        """Relative raw layer of gate layer ``g`` (fast layers interleaved)."""
        retrieval = 1 if g > 4 * self._n else 0
        return g + self._ups_before_gate(g) + self._downs_before_gate(g) + retrieval

    def _label_at_gate(self, g: int) -> int:
        """Sub-QRAM label the query occupies while executing gate ``g``."""
        return self._ups_before_gate(g) - self._downs_before_gate(g)

    # --------------------------------------------------- admission feasibility
    def minimum_feasible_interval(self, num_queries: int = 2) -> int:
        """Smallest admission interval with no cross-query qubit conflicts.

        Conflicts are checked at (role, level, label) granularity, which is
        exactly the granularity at which instructions act.  Two migrations of
        the same label pair in the same layer are a single shared swap (the
        sub-QRAM exchange of Alg. 1) and are not a conflict.
        """
        if num_queries < 2:
            return PIPELINE_INTERVAL
        if self._min_interval_cache is not None:
            return self._min_interval_cache
        base = self.relative_schedule(0)
        by_layer: dict[int, list[Instruction]] = {}
        for instr in base:
            by_layer.setdefault(instr.raw_layer, []).append(instr)
        lifetime = self.relative_raw_latency()
        result = 10 * self._n  # fully sequential fallback (never reached)
        for interval in range(PIPELINE_INTERVAL, 10 * self._n + 1):
            if self._interval_is_feasible(by_layer, interval, lifetime):
                result = interval
                break
        self._min_interval_cache = result
        return result

    def _interval_is_feasible(
        self, by_layer: dict[int, list[Instruction]], interval: int, lifetime: int
    ) -> bool:
        """Check all pairwise offsets that can overlap at this interval."""
        max_shift = (lifetime // interval) + 1
        for k in range(1, max_shift + 1):
            offset = k * interval
            if offset >= lifetime:
                break
            if not self._offset_is_conflict_free(by_layer, offset):
                return False
        return True

    def resident_label(self, relative_raw: int) -> int | None:
        """Sub-QRAM label a query resides in at one of its relative layers.

        The query is considered resident in a label from the swap step that
        brings it in up to and including the swap step that takes it out
        (boundary layers are shared exchange layers).
        """
        lifetime = self.relative_raw_latency()
        if relative_raw < 1 or relative_raw > lifetime:
            return None
        n = self._n
        up_layers = [self._raw_of_gate(4 * j - 1) + 1 for j in range(1, n)]
        down_layers = [self._raw_of_gate(8 * n + 1 - 4 * j) + 1 for j in range(1, n)]
        label = 0
        for layer in up_layers:
            if relative_raw > layer:
                label += 1
        for layer in down_layers:
            if relative_raw > layer:
                label -= 1
        return label

    def _touched(self, instr: Instruction) -> frozenset:
        """Qubit-group locations an instruction acts on, cached by identity."""
        locations = self._locations_cache.get(instr)
        if locations is None:
            locations = frozenset(_touched_locations(instr))
            self._locations_cache[instr] = locations
        return locations

    def _offset_is_conflict_free(
        self, by_layer: dict[int, list[Instruction]], offset: int
    ) -> bool:
        lifetime = self.relative_raw_latency()
        for layer, instrs in by_layer.items():
            other_layer = layer - offset
            others = by_layer.get(other_layer, [])
            # (a) instruction-vs-instruction overlap on the same qubit groups
            for a in instrs:
                for b in others:
                    if _compatible_shared_swap(a, b):
                        continue
                    if self._touched(a) & self._touched(b):
                        return False
            # (b) migrations must not move qubits where the *other* query is
            #     merely resident (its stored bits and waiting items), unless
            #     the other query is exchanging the same label pair.
            if 1 <= other_layer <= lifetime:
                other_resident = self.resident_label(other_layer)
                for a in instrs:
                    if a.kind is not InstructionKind.SWAP_MIGRATE:
                        continue
                    if other_resident not in (a.label, a.label + 1):
                        continue
                    shared = any(_compatible_shared_swap(a, b) for b in others)
                    if not shared:
                        return False
            # Symmetric case: the other query's migrations vs this residency.
            if 1 <= other_layer <= lifetime:
                this_resident = self.resident_label(layer)
                for b in others:
                    if b.kind is not InstructionKind.SWAP_MIGRATE:
                        continue
                    if this_resident not in (b.label, b.label + 1):
                        continue
                    shared = any(_compatible_shared_swap(a, b) for a in instrs)
                    if not shared:
                        return False
        return True

    # ------------------------------------------------------------- execution
    def run_pipelined_queries(
        self,
        requests: Sequence[QueryRequest],
        interval: int | None = None,
    ) -> tuple[PipelinedExecutionResult, dict[int, dict[tuple[int, int], complex]]]:
        """Execute several queries concurrently and return their outputs.

        Args:
            requests: query requests; each must carry address amplitudes.
            interval: admission interval in raw layers; defaults to the
                smallest feasible interval for this capacity.

        Returns:
            A pair of (execution summary, per-query output amplitudes over
            ``(address, bus)``).
        """
        if not requests:
            raise ValueError("at least one query request is required")
        if interval is None:
            interval = self.minimum_feasible_interval(len(requests))

        state = SparseState()
        state.ensure_qubits(self.structure.all_qubits())

        # Prepare external registers and the phase-kickback basis change.
        for request in requests:
            if request.address_amplitudes is None:
                raise ValueError("functional execution requires address amplitudes")
            address_qubits = [
                self.namer.address_qubit(request.query_id, bit)
                for bit in range(self._n)
            ]
            state.prepare_superposition(
                address_qubits, dict(request.address_amplitudes)
            )
            bus = self.namer.bus_qubit(request.query_id)
            state.add_qubit(bus, request.initial_bus)
            state.apply_gate("H", (bus,))

        # Build the merged absolute schedule.
        merged: list[Instruction] = []
        for slot, request in enumerate(requests):
            start = slot * interval
            for instr in self.relative_schedule(request.query_id):
                merged.append(
                    Instruction(
                        instr.kind,
                        query=instr.query,
                        item=instr.item,
                        level=instr.level,
                        label=instr.label,
                        raw_layer=instr.raw_layer + start,
                        gate_layer=instr.gate_layer,
                    )
                )
        merged.sort(key=lambda i: i.raw_layer)

        # Execute layer by layer, de-duplicating shared migrations.
        total_layers = max(i.raw_layer for i in merged)
        by_layer: dict[int, list[Instruction]] = {}
        for instr in merged:
            by_layer.setdefault(instr.raw_layer, []).append(instr)
        for layer in sorted(by_layer):
            executed_swaps: set[tuple[int, int]] = set()
            for instr in by_layer[layer]:
                if instr.kind is InstructionKind.SWAP_MIGRATE:
                    key = (instr.label, instr.level)
                    if key in executed_swaps:
                        continue
                    executed_swaps.add(key)
                for op in self._lowered_operations(instr):
                    state.apply_operation(op)

        # Undo the bus basis change and collect outputs.
        outputs: dict[int, dict[tuple[int, int], complex]] = {}
        results: list[QueryResult] = []
        lifetime = self.relative_raw_latency()
        for slot, request in enumerate(requests):
            bus = self.namer.bus_qubit(request.query_id)
            state.apply_gate("H", (bus,))
            qubits = [
                self.namer.address_qubit(request.query_id, bit)
                for bit in range(self._n)
            ]
            qubits.append(bus)
            joint = state.register_amplitudes(qubits)
            outputs[request.query_id] = {
                divmod(value, 2): amp for value, amp in joint.items()
            }
            start_layer = slot * interval + 1
            finish_layer = slot * interval + lifetime
            results.append(
                QueryResult(
                    query_id=request.query_id,
                    start_layer=start_layer,
                    finish_layer=finish_layer,
                    latency_layers=finish_layer - start_layer + 1,
                    request_time=request.request_time,
                    request_to_finish=finish_layer - request.request_time,
                    amplitudes=outputs[request.query_id],
                    status=QueryStatus.COMPLETED,
                )
            )

        summary = PipelinedExecutionResult(
            interval=interval,
            total_layers=total_layers,
            per_query_raw_layers=lifetime,
            results=results,
            max_concurrent=self._max_concurrent(len(requests), interval, lifetime),
        )
        self._final_state = state
        return summary, outputs

    #: Instruction kinds whose lowering names per-query external qubits
    #: (address / bus registers); everything else acts on tree qubits only
    #: and lowers identically for every query.
    _QUERY_SENSITIVE_KINDS = frozenset(
        {InstructionKind.LOAD, InstructionKind.UNLOAD}
    )

    def _lowered_operations(self, instr: Instruction):
        """Lowered gate sequence of an instruction, cached by identity.

        Lowering depends on (kind, item, level, label) and on the classical
        data — which is fixed for the executor's lifetime — never on the
        absolute raw layer, so merged absolute schedules reuse the lowered
        operations of the relative schedule across runs.  The query id only
        matters for LOAD/UNLOAD (which touch the query's external address /
        bus qubits), so all other kinds share one cache entry across
        queries, keeping the cache bounded by the schedule size rather than
        by the number of distinct query ids ever served.
        """
        query_key = instr.query if instr.kind in self._QUERY_SENSITIVE_KINDS else -1
        key = (instr.kind, query_key, instr.item, instr.level, instr.label)
        operations = self._lowered_cache.get(key)
        if operations is None:
            operations = lower_instruction(
                instr,
                self.namer,
                self._n,
                data=self.data,
                leaf_label=self._n - 1,
            )
            self._lowered_cache[key] = operations
        return operations

    @staticmethod
    def _max_concurrent(num_queries: int, interval: int, lifetime: int) -> int:
        in_flight = 1 + (lifetime - 1) // interval
        return min(num_queries, in_flight)

    # ------------------------------------------------------------ inspection
    def expected_output(
        self, request: QueryRequest
    ) -> dict[tuple[int, int], complex]:
        """Ideal output of a request per Eq. (1)."""
        return ideal_query_output(
            self.data, dict(request.address_amplitudes or {}), request.initial_bus
        )

    def query_fidelity(
        self,
        request: QueryRequest,
        output: Mapping[tuple[int, int], complex],
    ) -> float:
        """|<ideal|actual>|^2 for one query's output register."""
        return output_fidelity(self.expected_output(request), output)

    def tree_is_clean(self) -> bool:
        """After execution, every tree qubit must be |0> in every branch."""
        state = getattr(self, "_final_state", None)
        if state is None:
            raise RuntimeError("no execution has been run yet")
        tree_qubits = set(self.structure.all_qubits())
        for basis, _amp in state.items():
            for qubit, value in zip(state.qubits, basis):
                if qubit in tree_qubits and value != 0:
                    return False
        return True


def _compatible_shared_swap(a: Instruction, b: Instruction) -> bool:
    """Two migrations of the same label pair in one layer are one shared swap."""
    return (
        a.kind is InstructionKind.SWAP_MIGRATE
        and b.kind is InstructionKind.SWAP_MIGRATE
        and a.label == b.label
        and a.level == b.level
    )
