"""Architectural pipeline model of Fat-Tree QRAM (Alg. 1, Fig. 6).

This module implements the paper's *abstract machine* for query-level
pipelining: queries are admitted every ``PIPELINE_INTERVAL = 10`` raw circuit
layers; each query takes ``10 n - 1`` raw layers (``8 n`` full CSWAP layers
plus ``2 n - 1`` fast layers: ``n - 1`` upward SWAP steps, one data-retrieval
layer, ``n - 1`` downward SWAP steps); swap steps happen on the global
5-layer cadence alternating SWAP-I (even label pairs) and SWAP-II (odd
pairs); a query occupies exactly one sub-component QRAM at any time and two
consecutive queries exchange sub-QRAMs at shared swap layers.

All latency / bandwidth / utilization numbers of Tables 1-2 and Figs. 6-8
derive from this model; :meth:`FatTreePipeline.verify_no_conflicts` is the
machine-checked version of Fig. 6's "no conflicting colors in the same
layer".

The gate-level realisation in :mod:`repro.core.executor` needs a slightly
longer steady-state admission interval (see EXPERIMENTS.md); the discrepancy
is constant (independent of ``N``) and does not affect any asymptotic or
shape claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.bucket_brigade.instructions import FAST_LAYER_COST, FULL_LAYER_COST
from repro.bucket_brigade.tree import validate_capacity

#: Raw circuit layers between two consecutive query admissions (Fig. 6).
PIPELINE_INTERVAL = 10

#: Raw circuit layers between consecutive swap steps (gate step = 4 + swap = 1).
SWAP_CADENCE = 5


def fat_tree_raw_query_layers(capacity: int) -> int:
    """Raw layers of one Fat-Tree query: ``10 log2(N) - 1`` (29 for N = 8)."""
    n = validate_capacity(capacity)
    return 10 * n - 1


def fat_tree_single_query_latency(capacity: int) -> float:
    """Weighted single-query latency ``8.25 log2(N) - 0.125`` (Table 1)."""
    n = validate_capacity(capacity)
    return 8 * n * FULL_LAYER_COST + (2 * n - 1) * FAST_LAYER_COST


def fat_tree_parallel_query_latency(capacity: int, num_queries: int) -> float:
    """Weighted latency of ``num_queries`` pipelined queries.

    Each additional query adds one pipeline interval (8 full + 2 fast layers
    = 8.25 weighted).  For ``num_queries = log2(N)`` this evaluates to
    ``16.5 log2(N) - 8.375`` (Table 1).
    """
    if num_queries < 1:
        raise ValueError("num_queries must be >= 1")
    interval_cost = 8 * FULL_LAYER_COST + 2 * FAST_LAYER_COST
    return fat_tree_single_query_latency(capacity) + (num_queries - 1) * interval_cost


def fat_tree_amortized_query_latency(capacity: int) -> float:
    """Weighted amortized per-query latency in steady state: ``8.25``."""
    validate_capacity(capacity)
    return 8 * FULL_LAYER_COST + 2 * FAST_LAYER_COST


@dataclass(frozen=True)
class QueryTimeline:
    """Milestones of one pipelined query, in absolute raw layers.

    Attributes:
        query_id: index of the query in admission order.
        start_layer: first raw layer of the query.
        data_retrieval_layer: raw layer of its CLASSICAL-GATES step.
        finish_layer: last raw layer of the query.
    """

    query_id: int
    start_layer: int
    data_retrieval_layer: int
    finish_layer: int

    @property
    def raw_latency(self) -> int:
        return self.finish_layer - self.start_layer + 1


class FatTreePipeline:
    """Pipeline schedule of ``num_queries`` back-to-back queries (Fig. 6).

    Args:
        capacity: QRAM capacity ``N``.
        num_queries: number of queries to pipeline (defaults to ``log2 N``,
            the query parallelism of the architecture).
        start_interval: raw layers between admissions (default 10).
    """

    def __init__(
        self,
        capacity: int,
        num_queries: int | None = None,
        start_interval: int = PIPELINE_INTERVAL,
    ) -> None:
        self._n = validate_capacity(capacity)
        self._capacity = capacity
        self.num_queries = self._n if num_queries is None else num_queries
        if self.num_queries < 1:
            raise ValueError("num_queries must be >= 1")
        if start_interval < PIPELINE_INTERVAL:
            raise ValueError(
                f"start_interval must be >= {PIPELINE_INTERVAL} raw layers"
            )
        self.start_interval = start_interval

    # -------------------------------------------------------------- timelines
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def address_width(self) -> int:
        return self._n

    @property
    def query_raw_latency(self) -> int:
        """Raw layers per query: ``10 n - 1``."""
        return fat_tree_raw_query_layers(self._capacity)

    def timeline(self, query_id: int) -> QueryTimeline:
        """Milestones of the ``query_id``-th admitted query."""
        if not 0 <= query_id < self.num_queries:
            raise ValueError(f"query {query_id} out of range")
        start = query_id * self.start_interval + 1
        return QueryTimeline(
            query_id=query_id,
            start_layer=start,
            data_retrieval_layer=start + 5 * self._n - 1,
            finish_layer=start + self.query_raw_latency - 1,
        )

    def timelines(self) -> list[QueryTimeline]:
        return [self.timeline(q) for q in range(self.num_queries)]

    @property
    def total_raw_layers(self) -> int:
        """Raw layers until the last query finishes (``20 n - 11`` for
        ``log N`` queries at the default interval)."""
        return self.timeline(self.num_queries - 1).finish_layer

    def total_weighted_latency(self) -> float:
        """Weighted latency until the last query finishes (Table 1 row
        ``t_log(N)`` when ``num_queries = log2 N``)."""
        return fat_tree_parallel_query_latency(self._capacity, self.num_queries)

    def amortized_weighted_latency(self) -> float:
        """Weighted steady-state amortized latency per query.

        One query is admitted every ``start_interval`` raw layers, so the
        amortized per-query cost is the weighted cost of one admission
        interval (8.25 for the paper's default 10-layer interval).
        """
        return self.interval_weighted_cost()

    def interval_weighted_cost(self) -> float:
        """Weighted cost of one admission interval of ``start_interval`` raw
        layers.

        Every :data:`SWAP_CADENCE`-th raw layer is a fast layer (the swap /
        data-retrieval cadence of Alg. 1), so in steady state an interval of
        ``s`` raw layers contains ``s / 5`` fast layers on average — for an
        ``s`` not a multiple of 5, successive intervals alternate between
        ``floor(s/5)`` and ``ceil(s/5)`` cadence layers depending on their
        alignment, and the amortized cost is the fractional average.  For
        the default ``s = 10`` this is ``8 + 2/8 = 8.25`` weighted layers.
        """
        per_cadence = (SWAP_CADENCE - 1) * FULL_LAYER_COST + FAST_LAYER_COST
        return self.start_interval * per_cadence / SWAP_CADENCE

    # ------------------------------------------------------- label occupancy
    def label_at(self, query_id: int, raw_layer: int) -> int | None:
        """Sub-QRAM label occupied by a query at an absolute raw layer.

        Returns None when the query is not active at that layer.

        The trajectory follows Alg. 1: the query climbs one sub-QRAM per swap
        step during loading (label ``ell`` during relative layers
        ``[5 ell + 1, 5 (ell + 1)]``), stays in sub-QRAM ``n - 1`` for the
        10 layers around data retrieval, and descends symmetrically.
        """
        start = self.timeline(query_id).start_layer
        r = raw_layer - start + 1
        n = self._n
        if r < 1 or r > self.query_raw_latency:
            return None
        if r <= 5 * (n - 1):
            return (r - 1) // 5
        if r <= 5 * (n + 1):
            return n - 1
        return (10 * n - r) // 5

    def occupied_labels(self, raw_layer: int) -> dict[int, int]:
        """Map of sub-QRAM label -> query id at an absolute raw layer.

        Raises:
            AssertionError: if two queries claim the same label (the
                machine-checked "no conflicting colors" property).
        """
        occupancy: dict[int, int] = {}
        for q in range(self.num_queries):
            label = self.label_at(q, raw_layer)
            if label is None:
                continue
            if label in occupancy:
                raise AssertionError(
                    f"layer {raw_layer}: queries {occupancy[label]} and {q} "
                    f"both occupy sub-QRAM {label}"
                )
            occupancy[label] = q
        return occupancy

    def verify_no_conflicts(self) -> None:
        """Check label-exclusivity for the whole schedule (Fig. 6 property)."""
        for layer in range(1, self.total_raw_layers + 1):
            self.occupied_labels(layer)

    def active_queries(self, raw_layer: int) -> list[int]:
        """Queries in flight at a raw layer."""
        active = []
        for q in range(self.num_queries):
            t = self.timeline(q)
            if t.start_layer <= raw_layer <= t.finish_layer:
                active.append(q)
        return active

    def utilization_profile(self) -> list[float]:
        """Per-layer utilization: active queries / query parallelism."""
        total = self.total_raw_layers
        parallelism = self._n
        return [
            len(self.active_queries(layer)) / parallelism
            for layer in range(1, total + 1)
        ]

    def average_utilization(self) -> float:
        """Mean utilization over the schedule."""
        profile = self.utilization_profile()
        return sum(profile) / len(profile) if profile else 0.0

    # -------------------------------------------------------------- swap steps
    def swap_layers(self) -> list[int]:
        """Absolute raw layers of the global swap cadence."""
        return list(range(SWAP_CADENCE, self.total_raw_layers + 1, SWAP_CADENCE))

    def swap_type(self, raw_layer: int) -> str | None:
        """``"SWAP-I"`` / ``"SWAP-II"`` for swap-cadence layers, else None.

        SWAP-I exchanges even label pairs ``(k, k+1)`` (k even), SWAP-II the
        odd pairs; the two alternate every 5 raw layers (Alg. 1).
        """
        if raw_layer % SWAP_CADENCE != 0:
            return None
        step = raw_layer // SWAP_CADENCE
        return "SWAP-I" if step % 2 == 1 else "SWAP-II"

    # --------------------------------------------------------------- reporting
    def bandwidth(self, clops: float = 1.0e6) -> float:
        """Sustained query bandwidth in qubits/second at the given clock.

        One bus qubit is delivered per admission interval; at the default
        10-raw-layer interval that is 8 full + 2 fast layers = 8.25 weighted
        layers, giving ``clops / 8.25`` (1.21e5 for the paper's 1 MHz CLOPS).
        A pipeline built with a larger ``start_interval`` delivers
        proportionally less bandwidth.
        """
        return clops / float(self.interval_weighted_cost())

    def exact_amortized_latency(self) -> Fraction:
        """Amortized latency as an exact fraction (33/4 weighted layers for
        the default interval): ``s * (4 + 1/8) / 5 = 33 s / 40``."""
        return Fraction(33 * self.start_interval, 40)
