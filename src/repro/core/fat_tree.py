"""Fat-Tree QRAM structure: multiplexed quantum routers in a binary tree.

A capacity-``N`` (``n = log2 N``) Fat-Tree QRAM replaces the single router at
node ``(i, j)`` of a BB QRAM with ``n - i`` routers (Sec. 4.1).  We identify
routers by the 3-tuple ``(i, j, k)`` where ``k`` is the *sub-QRAM label*:
node ``(i, j)`` hosts the routers with labels ``k = i, i+1, ..., n-1`` and the
routers with a fixed label ``k`` across all nodes with ``i <= k`` form the
"sub-component QRAM" ``k`` of Fig. 5 (the label is the sub-QRAM index; the
physical slot of label ``k`` inside node ``(i, j)`` is ``k - i``, so labels
adjacent in value are physically adjacent, which is what makes SWAP-I/II
nearest-neighbour operations).

Key structural facts reproduced here (Sec. 4.1):

* router count ``sum_i (n - i) 2^i = 2N - 2 - n`` (about 2x BB QRAM),
* inter-node wire count between level ``i`` and ``i+1`` is ``n - i - 1`` per
  child (``n`` external wires at the root, decreasing to one at the leaves),
* router ``(i, j, k)`` has output qubits iff ``k > i`` (or ``i = n-1``, where
  the outputs are the leaf cells coupled to the classical memory); the router
  with ``k = i`` is the transient-storage router of its node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.bucket_brigade.instructions import QubitNamer
from repro.bucket_brigade.tree import validate_capacity


@dataclass(frozen=True, order=True)
class FatTreeRouterId:
    """Identifier of a multiplexed router.

    Attributes:
        level: tree level ``i``.
        index: node index ``j`` within the level.
        label: sub-QRAM label ``k`` (``i <= k <= n-1``).
    """

    level: int
    index: int
    label: int

    def __post_init__(self) -> None:
        if self.level < 0 or self.index < 0 or self.label < 0:
            raise ValueError("level, index and label must be non-negative")
        if not 0 <= self.index < 2**self.level:
            raise ValueError(
                f"node index {self.index} out of range for level {self.level}"
            )
        if self.label < self.level:
            raise ValueError(
                f"label {self.label} cannot be smaller than level {self.level}"
            )

    @property
    def slot(self) -> int:
        """Physical slot of this router inside its node (0 = transient)."""
        return self.label - self.level


class FatTreeStructure:
    """Static structure of a capacity-``N`` Fat-Tree QRAM."""

    def __init__(self, capacity: int) -> None:
        self._n = validate_capacity(capacity)
        self._capacity = capacity
        self.namer = QubitNamer(prefix="ft", multiplexed=True)

    # ---------------------------------------------------------------- sizing
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def address_width(self) -> int:
        return self._n

    @property
    def num_nodes(self) -> int:
        """Number of Fat-Tree nodes (same as BB routers): ``N - 1``."""
        return self._capacity - 1

    @property
    def num_routers(self) -> int:
        """Total multiplexed routers: ``2N - 2 - n``."""
        return 2 * self._capacity - 2 - self._n

    def routers_in_node(self, level: int) -> int:
        """Routers inside a node at ``level``: ``n - level``."""
        self._check_level(level)
        return self._n - level

    def routers_at_level(self, level: int) -> int:
        """Total routers across all nodes of a level."""
        return self.routers_in_node(level) * (2**level)

    def labels_in_node(self, level: int) -> range:
        """Sub-QRAM labels present in a node at ``level``."""
        self._check_level(level)
        return range(level, self._n)

    def wires_to_children(self, level: int) -> int:
        """Inter-node wires from a node at ``level`` to each child.

        ``n - level - 1`` for internal levels; the last level connects to the
        classical memory cells instead of child nodes.
        """
        self._check_level(level)
        if level == self._n - 1:
            return 0
        return self._n - level - 1

    @property
    def external_ports(self) -> int:
        """External wires at the root node: ``n``."""
        return self._n

    def has_outputs(self, router: FatTreeRouterId) -> bool:
        """Whether the router has output qubits (see module docstring)."""
        self._validate_router(router)
        return router.label > router.level or router.level == self._n - 1

    def is_transient(self, router: FatTreeRouterId) -> bool:
        """Whether the router is the transient-storage router of its node."""
        return not self.has_outputs(router)

    # ------------------------------------------------------------- iteration
    def routers(self) -> Iterator[FatTreeRouterId]:
        """All routers in (level, index, label) order."""
        for level in range(self._n):
            for index in range(2**level):
                for label in range(level, self._n):
                    yield FatTreeRouterId(level, index, label)

    def routers_with_label(self, label: int) -> Iterator[FatTreeRouterId]:
        """All routers of sub-QRAM ``label`` (levels 0..label)."""
        if not 0 <= label < self._n:
            raise ValueError(f"label {label} out of range")
        for level in range(label + 1):
            for index in range(2**level):
                yield FatTreeRouterId(level, index, label)

    # ----------------------------------------------------------- qubit naming
    def input_qubit(self, router: FatTreeRouterId) -> tuple:
        self._validate_router(router)
        return self.namer.input_qubit(router.level, router.index, router.label)

    def router_qubit(self, router: FatTreeRouterId) -> tuple:
        self._validate_router(router)
        return self.namer.router_qubit(router.level, router.index, router.label)

    def output_qubit(self, router: FatTreeRouterId, direction: int) -> tuple:
        self._validate_router(router)
        if not self.has_outputs(router):
            raise ValueError(f"router {router} has no output qubits")
        return self.namer.output_qubit(
            router.level, router.index, direction, router.label
        )

    def leaf_qubit(self, address: int) -> tuple:
        """Leaf cell qubit for a classical address (bottom level, label n-1)."""
        if not 0 <= address < self._capacity:
            raise ValueError(f"address {address} out of range")
        router = FatTreeRouterId(self._n - 1, address // 2, self._n - 1)
        return self.output_qubit(router, address % 2)

    def all_qubits(self) -> list[tuple]:
        """Every qubit of the router tree (3 or 5 per router)."""
        qubits: list[tuple] = []
        for router in self.routers():
            qubits.append(self.input_qubit(router))
            qubits.append(self.router_qubit(router))
            if self.has_outputs(router):
                qubits.append(self.output_qubit(router, 0))
                qubits.append(self.output_qubit(router, 1))
        return qubits

    @property
    def num_tree_qubits(self) -> int:
        """Number of simulator qubits in the tree."""
        return len(self.all_qubits())

    # --------------------------------------------------------------- helpers
    def qubit_count_per_node(self, level: int) -> int:
        """Simulator qubits in one node at ``level`` (grows with height)."""
        total = 0
        for label in self.labels_in_node(level):
            router = FatTreeRouterId(level, 0, label)
            total += 4 if self.has_outputs(router) else 2
        return total

    def _validate_router(self, router: FatTreeRouterId) -> None:
        if router.level >= self._n or router.label >= self._n:
            raise ValueError(f"router {router} outside a capacity-{self._capacity} tree")

    def _check_level(self, level: int) -> None:
        if not 0 <= level < self._n:
            raise ValueError(f"level {level} out of range [0, {self._n})")
