"""Fat-Tree QRAM — the paper's primary contribution.

* :mod:`repro.core.fat_tree` — the multiplexed router tree structure
  (router indexing ``(i, j, k)``, node sizes, wire counts, qubit counts).
* :mod:`repro.core.subqram` — the sub-component QRAM decomposition (Fig. 5).
* :mod:`repro.core.pipeline` — the architectural pipeline model
  (Alg. 1: 10-layer pipeline interval, SWAP-I/II cadence, per-query latency
  ``10 log N - 1`` raw layers, label-granularity conflict freedom — the model
  behind Fig. 6, Table 1 and Table 2).
* :mod:`repro.core.executor` — gate-level execution of pipelined queries on
  the sparse simulator (functional validation of Eq. (1) under sharing).
* :mod:`repro.core.query` — query request/result records.
* :mod:`repro.core.qram` — the user-facing :class:`FatTreeQRAM`.
"""

from repro.core.fat_tree import FatTreeStructure, FatTreeRouterId
from repro.core.subqram import SubQRAM
from repro.core.pipeline import FatTreePipeline, QueryTimeline
from repro.core.query import QueryRequest, QueryResult, QueryStatus
from repro.core.executor import FatTreeExecutor, PipelinedExecutionResult
from repro.core.qram import FatTreeQRAM

__all__ = [
    "FatTreeStructure",
    "FatTreeRouterId",
    "SubQRAM",
    "FatTreePipeline",
    "QueryTimeline",
    "QueryRequest",
    "QueryResult",
    "QueryStatus",
    "FatTreeExecutor",
    "PipelinedExecutionResult",
    "FatTreeQRAM",
]
