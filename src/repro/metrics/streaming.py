"""Online (single-pass, bounded-memory) serving statistics.

The batch path in :mod:`repro.metrics.service_stats` aggregates *records* —
one :class:`~repro.metrics.service_stats.ServedQuery` per completed request
— so its memory and summarize time grow with the request count.  This
module is the streaming alternative the engine uses under
``retention="sampled"`` / ``retention="none"``: every record is folded into
constant-size accumulators the moment it is produced and never stored.

* :class:`StreamingStat` — count / sum / mean / min / max of one series.
* :class:`P2Quantile` — the P² algorithm (Jain & Chlamtac, 1985): one
  running quantile estimate from five markers, no sample storage.  Exact
  below five observations, approximate beyond (error bounds are pinned
  against exact percentiles in ``tests/test_telemetry.py``).
* :class:`LatencySketch` — the p50 / p95 / p99 bundle used for latency.
* :class:`StreamingServiceAggregator` — the full
  :class:`~repro.metrics.service_stats.ServiceStats` surface (global,
  per-tenant, per-shard, per-backend, rejection and SLO accounting)
  maintained online; ``to_stats`` materializes the summary at any point.
* :class:`IntervalStats` — one time-windowed telemetry sample (throughput,
  queue depths, rejection rate, fidelity) emitted by the engine's periodic
  :class:`~repro.engine.events.TelemetryTick`.

Memory is O(tenants + shards + backends), never O(requests): a
million-query run aggregates through the same few kilobytes as a
hundred-query run.  Counts, sums and extrema are exact; only the latency
percentiles are sketched.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.metrics.service_stats import (
    REJECT_DEADLINE_EXPIRED,
    REJECT_FIDELITY,
    BackendStats,
    RejectedQuery,
    ServedQuery,
    ServiceStats,
    ShardStats,
    TenantStats,
    WindowRecord,
    _percentile,
)

__all__ = [
    "IntervalStats",
    "LatencySketch",
    "P2Quantile",
    "StreamingServiceAggregator",
    "StreamingStat",
    "merge_service_aggregators",
]


class StreamingStat:
    """Count / sum / mean / min / max of one series, in O(1) memory."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum: float | None = None
        self.maximum: float | None = None

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Mean of the series (0.0 when empty, matching ``_mean``)."""
        return self.total / self.count if self.count else 0.0

    def merge(self, other: StreamingStat) -> None:
        """Fold another series' accumulators into this one.

        Counts, sums and extrema merge exactly, so statistics over a
        partitioned run equal the statistics of one combined series up to
        float-summation order (parallel serving merges partitions in shard
        order, making the order — and the result — worker-count
        invariant).
        """
        self.count += other.count
        self.total += other.total
        if other.minimum is not None and (
            self.minimum is None or other.minimum < self.minimum
        ):
            self.minimum = other.minimum
        if other.maximum is not None and (
            self.maximum is None or other.maximum > self.maximum
        ):
            self.maximum = other.maximum


class P2Quantile:
    """One running quantile via the P² algorithm — five markers, no samples.

    The estimator keeps five marker heights that track the minimum, the
    target quantile, the quantile's half-way neighbours and the maximum,
    adjusting them with a piecewise-parabolic update as observations
    stream past.  Below five observations the buffered values give the
    exact (linearly interpolated) percentile.
    """

    __slots__ = (
        "quantile",
        "_count",
        "_heights",
        "_positions",
        "_desired",
        "_increments",
    )

    def __init__(self, quantile: float) -> None:
        if not 0.0 < quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        self.quantile = quantile
        self._count = 0
        self._heights: list[float] = []
        self._positions: list[float] = []
        self._desired: list[float] = []
        self._increments = [
            0.0, quantile / 2.0, quantile, (1.0 + quantile) / 2.0, 1.0
        ]

    @property
    def count(self) -> int:
        return self._count

    def add(self, value: float) -> None:
        # Branches and loops are unrolled and attributes bound once: four
        # sketches fold every served record (global p50/p95/p99 + tenant
        # p95), making this the single hottest method of streaming
        # retention.  Float operations and their order are unchanged.
        count = self._count + 1
        self._count = count
        heights = self._heights
        if count <= 5:
            heights.append(value)
            heights.sort()
            if count == 5:
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [
                    1.0 + 4.0 * inc for inc in self._increments
                ]
            return

        # Locate the cell the observation falls into, stretching the
        # extreme markers when it lands outside the current range.
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        elif value < heights[1]:
            cell = 0
        elif value < heights[2]:
            cell = 1
        elif value < heights[3]:
            cell = 2
        else:
            cell = 3
        positions = self._positions
        if cell == 0:
            positions[1] += 1.0
            positions[2] += 1.0
        elif cell == 1:
            positions[2] += 1.0
        if cell <= 2:
            positions[3] += 1.0
        positions[4] += 1.0
        desired = self._desired
        increments = self._increments
        # increments[0] is always 0.0 (and desired[0] stays 1.0), so the
        # first slot's no-op update is skipped.
        desired[1] += increments[1]
        desired[2] += increments[2]
        desired[3] += increments[3]
        desired[4] += increments[4]

        # Nudge the three interior markers toward their desired positions.
        for i in (1, 2, 3):
            delta = desired[i] - positions[i]
            if (delta >= 1.0 and positions[i + 1] - positions[i] > 1.0) or (
                delta <= -1.0 and positions[i - 1] - positions[i] < -1.0
            ):
                step = 1.0 if delta > 0 else -1.0
                candidate = self._parabolic(i, step)
                if not heights[i - 1] < candidate < heights[i + 1]:
                    candidate = self._linear(i, step)
                heights[i] = candidate
                positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (n[j] - n[i])

    @property
    def value(self) -> float:
        """Current quantile estimate (0.0 before any observation)."""
        if not self._count:
            return 0.0
        if self._count <= 5:
            return _percentile(self._heights, self.quantile * 100.0)
        return self._heights[2]


class LatencySketch:
    """The p50 / p95 / p99 latency bundle of one streaming series."""

    __slots__ = ("_p50", "_p95", "_p99")

    def __init__(self) -> None:
        self._p50 = P2Quantile(0.50)
        self._p95 = P2Quantile(0.95)
        self._p99 = P2Quantile(0.99)

    def add(self, value: float) -> None:
        self._p50.add(value)
        self._p95.add(value)
        self._p99.add(value)

    @property
    def p50(self) -> float:
        return self._p50.value

    @property
    def p95(self) -> float:
        return self._p95.value

    @property
    def p99(self) -> float:
        return self._p99.value


@dataclass(frozen=True)
class IntervalStats:
    """One time-windowed telemetry sample of a running service.

    Emitted by the engine's periodic
    :class:`~repro.engine.events.TelemetryTick`: counters cover the events
    of the half-open interval ``(start_layer, end_layer]``; queue depths
    are the instantaneous values at ``end_layer``.

    Attributes:
        start_layer / end_layer: bounds of the interval, raw layers.
        arrivals: requests that arrived in the interval (served or not).
        served: queries completed in the interval.
        rejected: requests refused in the interval (all reasons, shed
            included).
        shed: the expired-deadline subset of ``rejected``.
        windows: pipeline windows admitted in the interval.
        throughput_queries_per_layer: ``served`` over the interval length.
        queue_depth_total / queue_depth_max: queued requests summed / maxed
            over the active shards at the tick instant.
        rejection_rate: ``rejected`` over the interval's dispositions
            (``served + rejected``, both counted at the instant they
            happen, so the rate is always in [0, 1] even when a request
            sheds intervals after it arrived); 0.0 on an idle interval.
        mean_fidelity: mean fidelity of the queries served in the interval
            (``None`` when none carried a fidelity).
    """

    start_layer: float
    end_layer: float
    arrivals: int
    served: int
    rejected: int
    shed: int
    windows: int
    throughput_queries_per_layer: float
    queue_depth_total: int
    queue_depth_max: int
    rejection_rate: float
    mean_fidelity: float | None


@dataclass(slots=True)
class _GroupAggregate:
    """Shared accumulator behind the tenant / shard / backend views."""

    queries: int = 0
    latency: StreamingStat = field(default_factory=StreamingStat)
    queue_delay: StreamingStat = field(default_factory=StreamingStat)
    fidelity: StreamingStat = field(default_factory=StreamingStat)
    deadline_demand: int = 0
    deadline_misses: int = 0
    slo_demand: int = 0
    slo_misses: int = 0
    # Windows (shard / backend views only).
    windows: int = 0
    batch_total: int = 0
    busy_layers: float = 0.0
    architecture: str = ""
    shard_ids: set[int] = field(default_factory=set)
    # Rejections (tenant view only).
    shed: int = 0
    fidelity_rejected: int = 0

    def observe_served(self, record: ServedQuery) -> None:
        self._observe_values(
            record.latency_layers,
            record.queue_delay_layers,
            record.fidelity,
            record.deadline is not None,
            record.missed_deadline,
            record.min_fidelity is not None,
            record.missed_fidelity_slo,
        )

    def _observe_values(
        self,
        latency_layers: float,
        queue_delay_layers: float,
        fidelity: float | None,
        has_deadline: bool,
        missed_deadline: bool,
        has_slo: bool,
        missed_slo: bool,
    ) -> None:
        """Fold one served query's derived values into the accumulators.

        The aggregator computes the :class:`ServedQuery` property values
        once per record and feeds the same scalars to every group view
        (global / tenant / shard / backend) — four views per record make
        the recomputation the hottest line of streaming retention.
        """
        self.queries += 1
        self.latency.add(latency_layers)
        self.queue_delay.add(queue_delay_layers)
        if fidelity is not None:
            self.fidelity.add(fidelity)
        if has_deadline:
            self.deadline_demand += 1
            if missed_deadline:
                self.deadline_misses += 1
        if has_slo:
            self.slo_demand += 1
            if missed_slo:
                self.slo_misses += 1

    def observe_window(self, record: WindowRecord) -> None:
        self.windows += 1
        self.batch_total += record.batch_size
        self.busy_layers += record.total_layers

    def merge(self, other: _GroupAggregate) -> None:
        """Fold another group's accumulators into this one (shard-order
        deterministic; see :func:`merge_service_aggregators`)."""
        self.queries += other.queries
        self.latency.merge(other.latency)
        self.queue_delay.merge(other.queue_delay)
        self.fidelity.merge(other.fidelity)
        self.deadline_demand += other.deadline_demand
        self.deadline_misses += other.deadline_misses
        self.slo_demand += other.slo_demand
        self.slo_misses += other.slo_misses
        self.windows += other.windows
        self.batch_total += other.batch_total
        self.busy_layers += other.busy_layers
        if not self.architecture:
            self.architecture = other.architecture
        self.shard_ids |= other.shard_ids
        self.shed += other.shed
        self.fidelity_rejected += other.fidelity_rejected

    @property
    def mean_batch_size(self) -> float:
        return self.batch_total / self.windows if self.windows else 0.0


@dataclass(frozen=True)
class _FrozenQuantile:
    """A merged quantile estimate: duck-types ``P2Quantile.value``."""

    value: float


@dataclass(frozen=True)
class _FrozenSketch:
    """A merged latency bundle: duck-types ``LatencySketch.p50/p95/p99``."""

    p50: float
    p95: float
    p99: float


def _representatives(sketch: P2Quantile) -> list[tuple[float, float]]:
    """Compress one P² sketch into ``(value, weight)`` representatives.

    Below five observations the buffered values *are* the series (unit
    weights, exact).  Beyond, the five marker heights stand in for the
    series, each weighted by the share of observations its cell covers —
    half the span between its neighbouring marker positions, normalized so
    the weights sum to the observation count.  Merging partitions then
    reduces to a weighted percentile over all partitions' representatives.
    """
    count = sketch.count
    if count == 0:
        return []
    if count <= 5:
        return [(height, 1.0) for height in sketch._heights]
    positions = sketch._positions
    spans = [
        positions[1] - positions[0],
        (positions[2] - positions[0]) / 2.0,
        (positions[3] - positions[1]) / 2.0,
        (positions[4] - positions[2]) / 2.0,
        positions[4] - positions[3],
    ]
    total = sum(spans)
    return [
        (height, count * span / total)
        for height, span in zip(sketch._heights, spans)
    ]


def _weighted_percentile(
    representatives: list[tuple[float, float]], quantile: float
) -> float:
    """Linear-interpolated percentile of weighted representatives.

    Each representative of weight ``w`` sits at the center of its run of
    ``w`` virtual observations (``c_i = W_before + (w_i - 1) / 2``), so
    with unit weights this reproduces ``_percentile`` exactly — merged
    streaming percentiles of short series stay exact, and sketched ones
    degrade no further than the sketches themselves.
    """
    if not representatives:
        return 0.0
    ordered = sorted(representatives)
    total = sum(weight for _, weight in ordered)
    rank = (total - 1.0) * quantile
    centers: list[float] = []
    before = 0.0
    for _, weight in ordered:
        centers.append(before + (weight - 1.0) / 2.0)
        before += weight
    if rank <= centers[0]:
        return ordered[0][0]
    if rank >= centers[-1]:
        return ordered[-1][0]
    for index in range(1, len(ordered)):
        if rank <= centers[index]:
            lower, upper = centers[index - 1], centers[index]
            fraction = (rank - lower) / (upper - lower) if upper > lower else 0.0
            low_value = ordered[index - 1][0]
            return low_value + fraction * (ordered[index][0] - low_value)
    return ordered[-1][0]


class StreamingServiceAggregator:
    """The full :class:`ServiceStats` surface, maintained one record at a time.

    The engine feeds every :class:`ServedQuery`, :class:`WindowRecord` and
    :class:`RejectedQuery` through :meth:`observe_served` /
    :meth:`observe_window` / :meth:`observe_rejected`;
    :meth:`to_stats` materializes a :class:`ServiceStats` whose counts,
    sums, means, extrema and rates are exact and whose latency percentiles
    come from the P² sketches (global p50/p95/p99 and per-tenant p95).
    Memory is O(tenants + shards + backends), independent of the number of
    records observed.
    """

    def __init__(self) -> None:
        self.served_count = 0
        self.rejected_count = 0
        self.shed_count = 0
        self.fidelity_rejected_count = 0
        self.makespan_layers = 0.0
        self._global = _GroupAggregate()
        self._latency_sketch = LatencySketch()
        self._tenants: dict[int, _GroupAggregate] = {}
        self._tenant_sketches: dict[int, P2Quantile] = {}
        self._shards: dict[int, _GroupAggregate] = {}
        self._backends: dict[str, _GroupAggregate] = {}

    # ------------------------------------------------------------- observers
    def _tenant(self, tenant: int) -> _GroupAggregate:
        group = self._tenants.get(tenant)
        if group is None:
            group = self._tenants[tenant] = _GroupAggregate()
            self._tenant_sketches[tenant] = P2Quantile(0.95)
        return group

    def observe_served(self, record: ServedQuery) -> None:
        self.served_count += 1
        finish = record.finish_layer
        if finish > self.makespan_layers:
            self.makespan_layers = finish
        # Derive the record's property values once and share them across
        # the four group views — recomputing them per view was the hottest
        # line of streaming retention (see the engine's `sketch_update`
        # profile stage).
        request_time = record.request_time
        latency = finish - request_time
        queue_delay = record.admit_layer - request_time
        fidelity = record.fidelity
        deadline = record.deadline
        has_deadline = deadline is not None
        missed_deadline = has_deadline and finish > deadline
        min_fidelity = record.min_fidelity
        has_slo = min_fidelity is not None
        if has_slo:
            achieved = record.predicted_fidelity
            if achieved is None:
                achieved = fidelity
            missed_slo = achieved is not None and achieved < min_fidelity
        else:
            missed_slo = False
        tenant = record.tenant
        tenant_group = self._tenants.get(tenant)
        if tenant_group is None:
            tenant_group = self._tenant(tenant)
        shard = self._shards.get(record.shard)
        if shard is None:
            shard = self._shards[record.shard] = _GroupAggregate()
        if not shard.architecture:
            shard.architecture = record.architecture
        backend = self._backends.get(record.architecture)
        if backend is None:
            backend = self._backends[record.architecture] = _GroupAggregate()
            backend.shard_ids.add(record.shard)
        elif record.shard not in backend.shard_ids:
            backend.shard_ids.add(record.shard)
        for group in (self._global, tenant_group, shard, backend):
            group._observe_values(
                latency,
                queue_delay,
                fidelity,
                has_deadline,
                missed_deadline,
                has_slo,
                missed_slo,
            )
        self._latency_sketch.add(latency)
        self._tenant_sketches[tenant].add(latency)

    def observe_window(self, record: WindowRecord) -> None:
        # `.get` instead of `.setdefault`: the default argument would
        # construct (and usually discard) a fresh _GroupAggregate — three
        # StreamingStats and a set — on every window.
        shard = self._shards.get(record.shard)
        if shard is None:
            shard = self._shards[record.shard] = _GroupAggregate()
        shard.observe_window(record)
        backend = self._backends.get(record.architecture)
        if backend is None:
            backend = self._backends[record.architecture] = _GroupAggregate()
        backend.observe_window(record)

    def observe_rejected(self, record: RejectedQuery) -> None:
        # Mirror the batch path's tenant universe: shed and
        # fidelity-infeasible refusals surface per tenant (they are SLO
        # misses), while queue-full backpressure is service-level only — a
        # tenant whose whole demand bounced off a full queue must not
        # appear as a phantom zero-query row that summarize_service would
        # not report.
        self.rejected_count += 1
        if record.reason == REJECT_DEADLINE_EXPIRED:
            self.shed_count += 1
            self._tenant(record.tenant).shed += 1
        elif record.reason == REJECT_FIDELITY:
            self.fidelity_rejected_count += 1
            self._tenant(record.tenant).fidelity_rejected += 1

    # ----------------------------------------------------------- summarizing
    def to_stats(
        self,
        max_queue_depth: dict[int, int] | None = None,
        clops: float = 1.0e6,
    ) -> ServiceStats:
        """Materialize the running aggregates as a :class:`ServiceStats`.

        Mirrors :func:`repro.metrics.service_stats.summarize_service`
        record for record — identical counts, rates and extrema — with
        sketched latency percentiles in place of the exact order
        statistics.
        """
        if not self.served_count:
            raise ValueError("at least one served query is required")
        depths = max_queue_depth or {}
        makespan = self.makespan_layers
        seconds = makespan / clops if makespan > 0 else float("inf")

        per_tenant = {}
        for tenant in sorted(self._tenants):
            group = self._tenants[tenant]
            deadline_demand = group.deadline_demand + group.shed
            deadline_misses = group.deadline_misses + group.shed
            slo_demand = group.slo_demand + group.fidelity_rejected
            slo_misses = group.slo_misses + group.fidelity_rejected
            per_tenant[tenant] = TenantStats(
                tenant=tenant,
                queries=group.queries,
                mean_latency_layers=group.latency.mean,
                max_latency_layers=group.latency.maximum or 0.0,
                mean_queue_delay_layers=group.queue_delay.mean,
                throughput_queries_per_sec=group.queries / seconds,
                p95_latency_layers=self._tenant_sketches[tenant].value,
                deadline_misses=deadline_misses,
                deadline_miss_rate=(
                    deadline_misses / deadline_demand if deadline_demand else 0.0
                ),
                mean_fidelity=(
                    group.fidelity.mean if group.fidelity.count else None
                ),
                min_fidelity=group.fidelity.minimum,
                fidelity_slo_misses=slo_misses,
                fidelity_slo_miss_rate=(
                    slo_misses / slo_demand if slo_demand else 0.0
                ),
            )

        per_shard = {}
        for shard in sorted(self._shards):
            group = self._shards[shard]
            if not group.queries:
                continue
            per_shard[shard] = ShardStats(
                shard=shard,
                queries=group.queries,
                windows=group.windows,
                mean_batch_size=group.mean_batch_size,
                busy_layers=group.busy_layers,
                utilization=(
                    min(1.0, group.busy_layers / makespan) if makespan > 0 else 0.0
                ),
                max_queue_depth=depths.get(shard, 0),
                architecture=group.architecture,
                mean_fidelity=(
                    group.fidelity.mean if group.fidelity.count else None
                ),
                min_fidelity=group.fidelity.minimum,
                fidelity_slo_misses=group.slo_misses,
            )

        per_backend = {}
        for architecture in sorted(self._backends):
            group = self._backends[architecture]
            if not group.queries:
                continue
            per_backend[architecture] = BackendStats(
                architecture=architecture,
                shards=len(group.shard_ids),
                queries=group.queries,
                windows=group.windows,
                mean_batch_size=group.mean_batch_size,
                mean_latency_layers=group.latency.mean,
                mean_queue_delay_layers=group.queue_delay.mean,
                busy_layers=group.busy_layers,
                throughput_queries_per_sec=group.queries / seconds,
                mean_fidelity=(
                    group.fidelity.mean if group.fidelity.count else None
                ),
                min_fidelity=group.fidelity.minimum,
                fidelity_slo_misses=group.slo_misses,
            )

        total = self._global
        deadline_demand = total.deadline_demand + self.shed_count
        deadline_misses = total.deadline_misses + self.shed_count
        slo_demand = total.slo_demand + self.fidelity_rejected_count
        slo_misses = total.slo_misses + self.fidelity_rejected_count
        return ServiceStats(
            total_queries=self.served_count,
            makespan_layers=makespan,
            mean_latency_layers=total.latency.mean,
            mean_queue_delay_layers=total.queue_delay.mean,
            bandwidth_queries_per_sec=self.served_count / seconds,
            per_tenant=per_tenant,
            per_shard=per_shard,
            per_backend=per_backend,
            p50_latency_layers=self._latency_sketch.p50,
            p95_latency_layers=self._latency_sketch.p95,
            p99_latency_layers=self._latency_sketch.p99,
            offered_queries=self.served_count + self.rejected_count,
            rejected_queries=self.rejected_count - self.shed_count,
            shed_queries=self.shed_count,
            fidelity_rejected_queries=self.fidelity_rejected_count,
            deadline_misses=deadline_misses,
            deadline_miss_rate=(
                deadline_misses / deadline_demand if deadline_demand else 0.0
            ),
            mean_fidelity=(
                total.fidelity.mean if total.fidelity.count else None
            ),
            min_fidelity=total.fidelity.minimum,
            fidelity_slo_misses=slo_misses,
            fidelity_slo_miss_rate=(
                slo_misses / slo_demand if slo_demand else 0.0
            ),
        )


def merge_service_aggregators(
    parts: list[StreamingServiceAggregator],
) -> StreamingServiceAggregator:
    """Combine per-partition aggregators into one fleet-wide aggregator.

    Parallel serving aggregates each shard's records in its own worker;
    this merge reassembles the run-wide view.  Counts, sums, means and
    extrema merge exactly — identical to observing every record in one
    aggregator.  The P² latency sketches are order-sensitive, so instead
    of replaying them the merge combines each partition's weighted
    representatives (:func:`_representatives`) into one weighted
    percentile: exact when every partition saw at most five observations,
    sketch-accurate beyond.  ``parts`` must be passed in shard order — the
    float-summation order is then fixed by the partition layout, making
    the merged statistics bit-identical across worker counts.

    The merged aggregator is a summarizing snapshot: its percentile
    sketches are frozen, so it must not observe further records.
    """
    if not parts:
        raise ValueError("at least one partition aggregator is required")
    merged = StreamingServiceAggregator()
    p50_reps: list[tuple[float, float]] = []
    p95_reps: list[tuple[float, float]] = []
    p99_reps: list[tuple[float, float]] = []
    tenant_reps: dict[int, list[tuple[float, float]]] = {}
    for part in parts:
        merged.served_count += part.served_count
        merged.rejected_count += part.rejected_count
        merged.shed_count += part.shed_count
        merged.fidelity_rejected_count += part.fidelity_rejected_count
        if part.makespan_layers > merged.makespan_layers:
            merged.makespan_layers = part.makespan_layers
        merged._global.merge(part._global)
        p50_reps.extend(_representatives(part._latency_sketch._p50))
        p95_reps.extend(_representatives(part._latency_sketch._p95))
        p99_reps.extend(_representatives(part._latency_sketch._p99))
        for tenant, group in part._tenants.items():
            merged._tenants.setdefault(tenant, _GroupAggregate()).merge(group)
            tenant_reps.setdefault(tenant, []).extend(
                _representatives(part._tenant_sketches[tenant])
            )
        for shard, shard_group in part._shards.items():
            merged._shards.setdefault(shard, _GroupAggregate()).merge(shard_group)
        for name, backend_group in part._backends.items():
            merged._backends.setdefault(name, _GroupAggregate()).merge(
                backend_group
            )
    merged._latency_sketch = _FrozenSketch(  # type: ignore[assignment]
        p50=_weighted_percentile(p50_reps, 0.50),
        p95=_weighted_percentile(p95_reps, 0.95),
        p99=_weighted_percentile(p99_reps, 0.99),
    )
    merged._tenant_sketches = {  # type: ignore[assignment]
        tenant: _FrozenQuantile(_weighted_percentile(reps, 0.95))
        for tenant, reps in tenant_reps.items()
    }
    return merged
