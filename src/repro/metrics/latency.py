"""Closed-form query latencies (Table 1) and their cross-checks.

Every latency is expressed in *weighted circuit layers*: full CSWAP layers
cost 1, intra-node SWAPs / classically controlled gates cost 1/8 (Table 1
footnote).  Multiplying by the CSWAP time (1 us) converts to microseconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.bucket_brigade.schedule import bb_weighted_query_latency
from repro.bucket_brigade.tree import validate_capacity
from repro.core.pipeline import (
    fat_tree_amortized_query_latency,
    fat_tree_parallel_query_latency,
    fat_tree_single_query_latency,
)


@dataclass(frozen=True)
class LatencySummary:
    """Latency rows of Table 1 for one architecture.

    Attributes:
        architecture: architecture name.
        single_query: ``t_1`` in weighted layers.
        parallel_queries: ``t_log(N)`` in weighted layers.
        amortized: amortized per-query latency in weighted layers.
    """

    architecture: str
    single_query: float
    parallel_queries: float
    amortized: float


def closed_form_latency(name: str, capacity: int) -> LatencySummary:
    """Table 1's closed-form latency expressions, evaluated exactly."""
    n = validate_capacity(capacity)
    if name == "Fat-Tree":
        return LatencySummary(
            name,
            fat_tree_single_query_latency(capacity),
            fat_tree_parallel_query_latency(capacity, n),
            fat_tree_amortized_query_latency(capacity),
        )
    if name == "D-Fat-Tree":
        single = fat_tree_single_query_latency(capacity)
        return LatencySummary(name, single, 16.5 - 8.375 / n, 8.25 / n)
    if name == "BB":
        single = bb_weighted_query_latency(capacity)
        return LatencySummary(name, single, n * single, single)
    if name == "D-BB":
        single = bb_weighted_query_latency(capacity)
        return LatencySummary(name, single, single, 8.0 + 0.125 / n)
    if name == "Virtual":
        single = 4.0 * n * n + 4.0625 * n - 4.0 * n * math.log2(n)
        return LatencySummary(name, single, single, single / n)
    raise KeyError(name)


def latency_summary(name: str, capacity: int) -> LatencySummary:
    """Latency summary computed from the architecture models themselves."""
    from repro.baselines.registry import build_architecture

    n = validate_capacity(capacity)
    qram = build_architecture(name, capacity)
    return LatencySummary(
        name,
        qram.single_query_latency(),
        qram.parallel_query_latency(n),
        # Steady-state amortized latency (Table 1 bottom row).
        qram.amortized_query_latency(),
    )


def latency_in_microseconds(weighted_layers: float, cswap_time_us: float = 1.0) -> float:
    """Convert weighted circuit layers to wall-clock microseconds."""
    return weighted_layers * cswap_time_us
