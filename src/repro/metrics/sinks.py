"""Record sinks: where the serving engine's per-request records go.

Historically every :class:`~repro.metrics.service_stats.ServedQuery`,
:class:`~repro.metrics.service_stats.WindowRecord` and
:class:`~repro.metrics.service_stats.RejectedQuery` was appended to an
in-memory list, so a run's memory grew with its request count.  The engine
now writes each record to a :class:`RecordSink` chosen by its retention
mode (with the online aggregates always maintained by
:mod:`repro.metrics.streaming`):

* :class:`ListSink` — keep everything (``retention="full"``, the historical
  behaviour; exact batch summaries).
* :class:`SamplingSink` — a fixed-size deterministic reservoir sample
  (``retention="sampled"``): a bounded, uniformly drawn subset survives
  for inspection while the streaming aggregates carry the statistics
  (exact counts and means, sketched percentiles).
* :class:`NullSink` — drop every record (``retention="none"``: stats only,
  bounded memory at any request count).
* :class:`JsonlSink` — append every record to a JSON-lines file as it
  happens (an *additional* tee for any retention mode: durable full
  telemetry without resident memory).  :func:`load_jsonl` reads the file
  back into typed records.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict
from typing import IO, Protocol, runtime_checkable

from repro.metrics.service_stats import (
    RejectedQuery,
    ScaleEvent,
    ServedQuery,
    WindowRecord,
)

__all__ = [
    "JsonlSink",
    "ListSink",
    "NullSink",
    "RecordSink",
    "SamplingSink",
    "load_jsonl",
]

#: Record classes a :class:`JsonlSink` can serialize and
#: :func:`load_jsonl` can reconstruct, keyed by their type tag.
RECORD_TYPES = {
    cls.__name__: cls
    for cls in (ServedQuery, WindowRecord, RejectedQuery, ScaleEvent)
}


@runtime_checkable
class RecordSink(Protocol):
    """What the engine requires of a record destination."""

    def append(self, record) -> None:
        """Accept one record (a frozen dataclass from ``service_stats``)."""
        ...


class ListSink:
    """Retain every record in insertion order (the historical behaviour)."""

    def __init__(self) -> None:
        self.records: list = []

    def append(self, record) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)


class NullSink:
    """Drop every record (streaming aggregates are the only survivors)."""

    def append(self, record) -> None:
        pass

    def __len__(self) -> int:
        return 0


class SamplingSink:
    """A fixed-size uniform reservoir sample of the record stream.

    Algorithm R with a seeded RNG: after ``n`` appends the sink holds
    ``min(n, capacity)`` records, each of the ``n`` with equal probability,
    deterministically for a fixed seed.  ``seen`` counts every append, so
    callers can tell a sample from a complete stream.
    """

    def __init__(self, capacity: int, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.records: list = []
        self.seen = 0
        self._rng = random.Random(seed)

    def append(self, record) -> None:
        self.seen += 1
        if len(self.records) < self.capacity:
            self.records.append(record)
            return
        slot = self._rng.randrange(self.seen)
        if slot < self.capacity:
            self.records[slot] = record

    def __len__(self) -> int:
        return len(self.records)


class JsonlSink:
    """Stream records to a JSON-lines file as they are produced.

    Each line is ``{"type": <record class name>, ...fields}``; every record
    class in :data:`RECORD_TYPES` round-trips exactly through
    :func:`load_jsonl` (all fields are ints, floats, strings or ``None``).
    The sink never retains records in memory — it is the durable
    full-telemetry tee for bounded-memory runs.  Use as a context manager
    or call :meth:`close` to flush.

    A *path* is opened fresh (truncating an existing file): one sink is
    one run's telemetry, so :func:`load_jsonl` reads back exactly that
    run.  To accumulate several runs in one file, pass an open handle
    (e.g. ``open(path, "a")``) instead — handles are written as-is and
    left open on :meth:`close`.
    """

    def __init__(self, path_or_handle: str | IO[str]) -> None:
        if isinstance(path_or_handle, str):
            self._handle: IO[str] = open(path_or_handle, "w", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = path_or_handle
            self._owns_handle = False
        self.written = 0

    def append(self, record) -> None:
        tag = type(record).__name__
        if tag not in RECORD_TYPES:
            raise TypeError(
                f"cannot serialize {tag}; expected one of {sorted(RECORD_TYPES)}"
            )
        line = json.dumps({"type": tag, **asdict(record)}, allow_nan=False)
        self._handle.write(line + "\n")
        self.written += 1

    def close(self) -> None:
        if self._owns_handle and not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> JsonlSink:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def load_jsonl(path_or_handle: str | IO[str]) -> list:
    """Read a :class:`JsonlSink` file back into typed records.

    Returns the records in file order; each line's ``type`` tag selects the
    dataclass to reconstruct.
    """
    if isinstance(path_or_handle, str):
        with open(path_or_handle, encoding="utf-8") as handle:
            return load_jsonl(handle)
    records = []
    for line in path_or_handle:
        line = line.strip()
        if not line:
            continue
        payload = json.loads(line)
        tag = payload.pop("type")
        try:
            cls = RECORD_TYPES[tag]
        except KeyError:
            raise ValueError(f"unknown record type {tag!r}") from None
        records.append(cls(**payload))
    return records
