"""Quantitative performance metrics for shared QRAMs (Sec. 6.2, Tables 1-2).

* :mod:`repro.metrics.resources` — qubit counts and router counts (Table 1).
* :mod:`repro.metrics.latency` — closed-form query latencies (Table 1).
* :mod:`repro.metrics.bandwidth` — QRAM bandwidth and memory access rate
  (Table 2, Fig. 8).
* :mod:`repro.metrics.spacetime` — space-time volume per query and the
  classical-memory-swap time budget (Table 2).
* :mod:`repro.metrics.service_stats` — per-tenant / per-shard serving
  statistics for the traffic-facing service layer (:mod:`repro.service`).
* :mod:`repro.metrics.streaming` — online (bounded-memory) aggregates and
  quantile sketches behind the engine's ``retention="sampled"`` /
  ``"none"`` modes and its periodic telemetry ticks.
* :mod:`repro.metrics.sinks` — pluggable record destinations (keep / sample
  / drop / JSON-lines tee) for the serving engine's observation path.
"""

from repro.metrics.resources import ResourceEstimate, resource_estimate, table1_rows
from repro.metrics.latency import latency_summary, LatencySummary
from repro.metrics.bandwidth import (
    bandwidth_qubits_per_second,
    bandwidth_scaling,
    memory_access_rate,
)
from repro.metrics.spacetime import (
    classical_memory_swap_budget_us,
    spacetime_volume_per_query,
    table2_rows,
)
from repro.metrics.service_stats import (
    REJECT_DEADLINE_EXPIRED,
    REJECT_FIDELITY,
    REJECT_QUEUE_FULL,
    RejectedQuery,
    ServedQuery,
    ServiceStats,
    ShardStats,
    TenantStats,
    WindowRecord,
    summarize_service,
)
from repro.metrics.sinks import (
    JsonlSink,
    ListSink,
    NullSink,
    RecordSink,
    SamplingSink,
    load_jsonl,
)
from repro.metrics.streaming import (
    IntervalStats,
    LatencySketch,
    P2Quantile,
    StreamingServiceAggregator,
    StreamingStat,
)

__all__ = [
    "ResourceEstimate",
    "resource_estimate",
    "table1_rows",
    "LatencySummary",
    "latency_summary",
    "bandwidth_qubits_per_second",
    "bandwidth_scaling",
    "memory_access_rate",
    "spacetime_volume_per_query",
    "classical_memory_swap_budget_us",
    "table2_rows",
    "REJECT_DEADLINE_EXPIRED",
    "REJECT_FIDELITY",
    "REJECT_QUEUE_FULL",
    "RejectedQuery",
    "ServedQuery",
    "ServiceStats",
    "ShardStats",
    "TenantStats",
    "WindowRecord",
    "summarize_service",
    "RecordSink",
    "ListSink",
    "SamplingSink",
    "JsonlSink",
    "NullSink",
    "load_jsonl",
    "StreamingStat",
    "P2Quantile",
    "LatencySketch",
    "IntervalStats",
    "StreamingServiceAggregator",
]
