"""Quantitative performance metrics for shared QRAMs (Sec. 6.2, Tables 1-2).

* :mod:`repro.metrics.resources` — qubit counts and router counts (Table 1).
* :mod:`repro.metrics.latency` — closed-form query latencies (Table 1).
* :mod:`repro.metrics.bandwidth` — QRAM bandwidth and memory access rate
  (Table 2, Fig. 8).
* :mod:`repro.metrics.spacetime` — space-time volume per query and the
  classical-memory-swap time budget (Table 2).
* :mod:`repro.metrics.service_stats` — per-tenant / per-shard serving
  statistics for the traffic-facing service layer (:mod:`repro.service`).
"""

from repro.metrics.resources import ResourceEstimate, resource_estimate, table1_rows
from repro.metrics.latency import latency_summary, LatencySummary
from repro.metrics.bandwidth import (
    bandwidth_qubits_per_second,
    bandwidth_scaling,
    memory_access_rate,
)
from repro.metrics.spacetime import (
    classical_memory_swap_budget_us,
    spacetime_volume_per_query,
    table2_rows,
)
from repro.metrics.service_stats import (
    REJECT_DEADLINE_EXPIRED,
    REJECT_FIDELITY,
    REJECT_QUEUE_FULL,
    RejectedQuery,
    ServedQuery,
    ServiceStats,
    ShardStats,
    TenantStats,
    WindowRecord,
    summarize_service,
)

__all__ = [
    "ResourceEstimate",
    "resource_estimate",
    "table1_rows",
    "LatencySummary",
    "latency_summary",
    "bandwidth_qubits_per_second",
    "bandwidth_scaling",
    "memory_access_rate",
    "spacetime_volume_per_query",
    "classical_memory_swap_budget_us",
    "table2_rows",
    "REJECT_DEADLINE_EXPIRED",
    "REJECT_FIDELITY",
    "REJECT_QUEUE_FULL",
    "RejectedQuery",
    "ServedQuery",
    "ServiceStats",
    "ShardStats",
    "TenantStats",
    "WindowRecord",
    "summarize_service",
]
