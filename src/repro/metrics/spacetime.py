"""Space-time volume per query and classical-memory-swap budget (Table 2)."""

from __future__ import annotations

from repro.baselines.registry import architecture_names, build_architecture
from repro.bucket_brigade.tree import validate_capacity
from repro.hardware.parameters import DEFAULT_PARAMETERS, HardwareParameters


def spacetime_volume_per_query(name: str, capacity: int) -> float:
    """Amortized qubit x circuit-depth cost of one query (Table 2).

    Fat-Tree: ``16 N * 8.25 = 132 N``; BB: ``8 N * (8 log N + 0.125)``; the
    other architectures follow from their qubit counts and amortized
    latencies.
    """
    validate_capacity(capacity)
    qram = build_architecture(name, capacity)
    # The amortized latency of a *fully loaded* architecture: this is what
    # makes D-Fat-Tree cost 132 N like Fat-Tree despite its log N copies.
    if name in ("Fat-Tree", "D-Fat-Tree"):
        amortized = qram.amortized_query_latency()
        if name == "D-Fat-Tree":
            amortized = qram.copies[0].amortized_query_latency() / qram.num_copies
    else:
        amortized = qram.single_query_latency() / max(1, qram.query_parallelism)
    return qram.qubit_count * amortized


def classical_memory_swap_budget_us(
    name: str,
    capacity: int,
    parameters: HardwareParameters = DEFAULT_PARAMETERS,
) -> float:
    """Time budget for swapping the classical memory between queries (us).

    The budget is the interval between the data-retrieval steps of two
    consecutive queries: the amortized query latency for pipelined
    architectures and the full query latency for sequential ones (Table 2).
    """
    validate_capacity(capacity)
    qram = build_architecture(name, capacity)
    if name in ("Fat-Tree", "D-Fat-Tree"):
        # Retrievals happen once per pipeline interval (8.25 weighted layers).
        weighted_layers = qram.amortized_query_latency()
        if name == "D-Fat-Tree":
            weighted_layers = qram.copies[0].amortized_query_latency()
    else:
        # Sequential (or page-multiplexed) architectures: one retrieval per
        # full query.
        weighted_layers = qram.single_query_latency()
    return weighted_layers * parameters.cswap_time_us


def table2_rows(
    capacity: int, parameters: HardwareParameters = DEFAULT_PARAMETERS
) -> list[dict[str, float | str | int]]:
    """All Table 2 rows for a given capacity."""
    from repro.metrics.bandwidth import bandwidth_qubits_per_second

    rows: list[dict[str, float | str | int]] = []
    for name in architecture_names():
        rows.append(
            {
                "architecture": name,
                "capacity": capacity,
                "bandwidth_qubits_per_sec": bandwidth_qubits_per_second(
                    name, capacity, parameters
                ),
                "spacetime_volume_per_query": spacetime_volume_per_query(
                    name, capacity
                ),
                "memory_swap_budget_us": classical_memory_swap_budget_us(
                    name, capacity, parameters
                ),
            }
        )
    return rows
