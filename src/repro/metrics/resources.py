"""Qubit / router resource estimates (Table 1, rows "Qubits" and
"Query parallelism")."""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.registry import architecture_names, build_architecture
from repro.bucket_brigade.tree import validate_capacity


@dataclass(frozen=True)
class ResourceEstimate:
    """Resource summary of one architecture at one capacity.

    Attributes:
        architecture: architecture name.
        capacity: memory size ``N``.
        qubits: physical qubit count.
        routers: quantum router count (hardware copies included).
        query_parallelism: independent queries servable simultaneously.
        qubit_group: "O(N)" or "O(N log N)".
    """

    architecture: str
    capacity: int
    qubits: int
    routers: int
    query_parallelism: int
    qubit_group: str


def _router_count(name: str, capacity: int) -> int:
    n = validate_capacity(capacity)
    if name == "BB":
        return capacity - 1
    if name == "Fat-Tree":
        return 2 * capacity - 2 - n
    if name == "D-BB":
        return n * (capacity - 1)
    if name == "D-Fat-Tree":
        return n * (2 * capacity - 2 - n)
    if name == "Virtual":
        # Same qubit budget as Fat-Tree: page QRAM replicated across virtual
        # instances plus page-select ancillas; router count reported as the
        # equivalent number of routers that budget buys.
        return 2 * capacity - 2 - n
    raise KeyError(name)


def resource_estimate(name: str, capacity: int) -> ResourceEstimate:
    """Resource estimate of one architecture (exact counts, Table 1)."""
    qram = build_architecture(name, capacity)
    from repro.baselines.registry import ARCHITECTURES

    return ResourceEstimate(
        architecture=name,
        capacity=capacity,
        qubits=qram.qubit_count,
        routers=_router_count(name, capacity),
        query_parallelism=qram.query_parallelism,
        qubit_group=ARCHITECTURES[name].qubit_group,
    )


def table1_rows(capacity: int) -> list[dict[str, object]]:
    """All Table 1 rows (resources and latencies) for a given capacity."""
    rows = []
    for name in architecture_names():
        qram = build_architecture(name, capacity)
        estimate = resource_estimate(name, capacity)
        rows.append(
            {
                "architecture": name,
                "capacity": capacity,
                "qubits": estimate.qubits,
                "query_parallelism": estimate.query_parallelism,
                "single_query_latency": qram.single_query_latency(),
                "parallel_query_latency": qram.parallel_query_latency(
                    validate_capacity(capacity)
                ),
                # Table 1's amortized row is the steady-state value (the
                # default): per-query cost once the pipeline is full.
                "amortized_query_latency": qram.amortized_query_latency(),
                "qubit_group": estimate.qubit_group,
            }
        )
    return rows
