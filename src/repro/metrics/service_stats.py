"""Per-tenant / per-shard / per-backend serving statistics.

The serving subsystem (:mod:`repro.service`) records one
:class:`ServedQuery` per completed request and one :class:`WindowRecord`
per executed pipeline window; this module aggregates them into the
latency / queue-depth / utilization / bandwidth summaries that a shared
memory serving many callers is judged by.  Since the service can drive a
heterogeneous fleet (per-shard architecture choice via
:mod:`repro.backends`), every record carries its backend's architecture
label and the summary reports per-architecture aggregates alongside the
per-tenant and per-shard ones.

All times are raw circuit layers on the service clock.  Conversions to
wall-clock treat one raw layer as one full CSWAP layer at the hardware
CLOPS — a conservative clock, since fast layers (1/8 cost) are counted
at full weight.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass, field


@dataclass(frozen=True)
class ServedQuery:
    """One completed request, as recorded by the serving loop.

    Attributes:
        query_id: identifier of the originating request.
        tenant: requesting tenant (QPU / algorithm id).
        shard: shard that served the query.
        request_time: arrival time (raw layers).
        admit_layer: when the query's pipeline window was admitted.
        start_layer: first raw layer of the query inside its window.
        finish_layer: raw layer at which the query completed.
        fidelity: |<ideal|actual>|^2 of the output register (None for
            timing-only serving).
        architecture: architecture name of the serving backend.
        deadline: absolute raw layer the request had to finish by
            (``None`` for best-effort requests).
    """

    query_id: int
    tenant: int
    shard: int
    request_time: float
    admit_layer: float
    start_layer: float
    finish_layer: float
    fidelity: float | None = None
    architecture: str = ""
    deadline: float | None = None

    @property
    def latency_layers(self) -> float:
        """Request-to-finish latency (queueing + service), raw layers."""
        return self.finish_layer - self.request_time

    @property
    def queue_delay_layers(self) -> float:
        """Raw layers the request waited before its window was admitted."""
        return self.admit_layer - self.request_time

    @property
    def missed_deadline(self) -> bool:
        """Whether the query finished after its deadline (False without one)."""
        return self.deadline is not None and self.finish_layer > self.deadline


#: Reason codes carried by :class:`RejectedQuery` records.
REJECT_QUEUE_FULL = "queue-full"
REJECT_DEADLINE_EXPIRED = "deadline-expired"


@dataclass(frozen=True)
class RejectedQuery:
    """One request the serving engine refused to serve.

    Attributes:
        query_id: identifier of the rejected request.
        tenant: requesting tenant (QPU / algorithm id).
        shard: shard whose queue the request was headed for.
        time: raw layer at which the rejection happened.
        reason: :data:`REJECT_QUEUE_FULL` (backpressure: the bounded queue
            was full at arrival) or :data:`REJECT_DEADLINE_EXPIRED` (the
            request was shed from the queue after its deadline passed).
        deadline: the request's deadline, if it carried one.
    """

    query_id: int
    tenant: int
    shard: int
    time: float
    reason: str
    deadline: float | None = None


@dataclass(frozen=True)
class ScaleEvent:
    """One elastic-fleet transition taken by the autoscaler.

    Attributes:
        time: raw layer of the scale check that triggered the transition.
        action: ``"up"`` (replica added) or ``"down"`` (replica retired).
        shard: index of the shard added or retired.
        active_shards: replicas active *after* the transition.
        trigger_depth: deepest active queue observed at the check.
    """

    time: float
    action: str
    shard: int
    active_shards: int
    trigger_depth: int


@dataclass(frozen=True)
class WindowRecord:
    """One executed pipeline window on one shard.

    Attributes:
        shard: shard the window ran on.
        admit_layer: when the window started.
        batch_size: queries admitted into the window.
        interval: admission interval used inside the window (raw layers;
            0 for architectures that admit a window concurrently).
        total_layers: raw layers until the window fully drained.
        architecture: architecture name of the serving backend.
    """

    shard: int
    admit_layer: float
    batch_size: int
    interval: int
    total_layers: float
    architecture: str = ""


@dataclass(frozen=True)
class TenantStats:
    """Serving quality observed by one tenant.

    ``deadline_miss_rate`` is computed over the tenant's SLO-carrying
    demand: served queries that had a deadline plus requests shed for an
    expired deadline (queue-full rejections are reported separately and do
    not count as misses).
    """

    tenant: int
    queries: int
    mean_latency_layers: float
    max_latency_layers: float
    mean_queue_delay_layers: float
    throughput_queries_per_sec: float
    p95_latency_layers: float = 0.0
    deadline_misses: int = 0
    deadline_miss_rate: float = 0.0


@dataclass(frozen=True)
class ShardStats:
    """Load placed on one shard."""

    shard: int
    queries: int
    windows: int
    mean_batch_size: float
    busy_layers: float
    utilization: float
    max_queue_depth: int
    architecture: str = ""


@dataclass(frozen=True)
class BackendStats:
    """Aggregate load and serving quality of one backend architecture.

    In a heterogeneous fleet this is the cross-architecture comparison:
    how many queries each architecture absorbed, at what latency, and how
    long its shards stayed busy.
    """

    architecture: str
    shards: int
    queries: int
    windows: int
    mean_batch_size: float
    mean_latency_layers: float
    mean_queue_delay_layers: float
    busy_layers: float
    throughput_queries_per_sec: float


@dataclass(frozen=True)
class ServiceStats:
    """Aggregate serving report.

    Attributes:
        total_queries: queries served.
        makespan_layers: raw layers from time 0 to the last completion.
        mean_latency_layers: mean request-to-finish latency.
        mean_queue_delay_layers: mean admission delay.
        bandwidth_queries_per_sec: served queries per second at the given
            CLOPS (raw layers counted as full layers).
        per_tenant: per-tenant summaries, keyed by tenant id.
        per_shard: per-shard summaries, keyed by shard index.
        per_backend: per-architecture summaries, keyed by architecture
            name (one entry per distinct backend label).
        p50_latency_layers / p95_latency_layers / p99_latency_layers:
            latency percentiles over all served queries (linear
            interpolation between order statistics).
        offered_queries: total requests offered to the service (served plus
            rejected plus shed).
        rejected_queries: requests refused at arrival (bounded queue full).
        shed_queries: requests dropped from a queue after their deadline
            expired.
        deadline_misses: served queries that finished past their deadline,
            plus shed requests (a shed request is a guaranteed miss).
        deadline_miss_rate: ``deadline_misses`` over the SLO-carrying
            demand (served-with-deadline + shed); 0.0 when no request
            carried a deadline.
    """

    total_queries: int
    makespan_layers: float
    mean_latency_layers: float
    mean_queue_delay_layers: float
    bandwidth_queries_per_sec: float
    per_tenant: dict[int, TenantStats] = field(default_factory=dict)
    per_shard: dict[int, ShardStats] = field(default_factory=dict)
    per_backend: dict[str, BackendStats] = field(default_factory=dict)
    p50_latency_layers: float = 0.0
    p95_latency_layers: float = 0.0
    p99_latency_layers: float = 0.0
    offered_queries: int = 0
    rejected_queries: int = 0
    shed_queries: int = 0
    deadline_misses: int = 0
    deadline_miss_rate: float = 0.0


def summarize_service(
    served: Sequence[ServedQuery],
    windows: Sequence[WindowRecord],
    max_queue_depth: dict[int, int] | None = None,
    clops: float = 1.0e6,
    rejected: Sequence[RejectedQuery] = (),
) -> ServiceStats:
    """Aggregate served-query and window records into a :class:`ServiceStats`.

    Args:
        served: one record per completed query.
        windows: one record per executed pipeline window.
        max_queue_depth: deepest per-shard queue observed by the serving
            loop (defaults to 0 for every shard).
        clops: hardware clock in full circuit layers per second.
        rejected: requests the engine refused (backpressure or expired
            deadlines), folded into the offered / shed / miss accounting.
    """
    if not served:
        raise ValueError("at least one served query is required")
    depths = max_queue_depth or {}
    makespan = max(s.finish_layer for s in served)
    seconds = makespan / clops if makespan > 0 else float("inf")

    by_tenant: dict[int, list[ServedQuery]] = {}
    by_shard: dict[int, list[ServedQuery]] = {}
    by_backend: dict[str, list[ServedQuery]] = {}
    for record in served:
        by_tenant.setdefault(record.tenant, []).append(record)
        by_shard.setdefault(record.shard, []).append(record)
        by_backend.setdefault(record.architecture, []).append(record)

    shed = [r for r in rejected if r.reason == REJECT_DEADLINE_EXPIRED]
    shed_by_tenant: dict[int, int] = {}
    for record in shed:
        shed_by_tenant[record.tenant] = shed_by_tenant.get(record.tenant, 0) + 1

    per_tenant = {}
    # Include tenants whose entire demand was shed: they served nothing but
    # their misses must not vanish from the per-tenant view.
    for tenant in sorted(set(by_tenant) | set(shed_by_tenant)):
        records = by_tenant.get(tenant, [])
        misses, miss_rate = _deadline_misses(records, shed_by_tenant.get(tenant, 0))
        per_tenant[tenant] = TenantStats(
            tenant=tenant,
            queries=len(records),
            mean_latency_layers=_mean([r.latency_layers for r in records]),
            max_latency_layers=max(
                (r.latency_layers for r in records), default=0.0
            ),
            mean_queue_delay_layers=_mean([r.queue_delay_layers for r in records]),
            throughput_queries_per_sec=len(records) / seconds,
            p95_latency_layers=_percentile([r.latency_layers for r in records], 95),
            deadline_misses=misses,
            deadline_miss_rate=miss_rate,
        )

    windows_by_shard: dict[int, list[WindowRecord]] = {}
    windows_by_backend: dict[str, list[WindowRecord]] = {}
    for window in windows:
        windows_by_shard.setdefault(window.shard, []).append(window)
        windows_by_backend.setdefault(window.architecture, []).append(window)
    per_shard = {}
    for shard, records in sorted(by_shard.items()):
        shard_windows = windows_by_shard.get(shard, [])
        busy = sum(w.total_layers for w in shard_windows)
        per_shard[shard] = ShardStats(
            shard=shard,
            queries=len(records),
            windows=len(shard_windows),
            mean_batch_size=_mean([w.batch_size for w in shard_windows]),
            busy_layers=busy,
            utilization=min(1.0, busy / makespan) if makespan > 0 else 0.0,
            max_queue_depth=depths.get(shard, 0),
            architecture=records[0].architecture,
        )

    per_backend = {}
    for architecture, records in sorted(by_backend.items()):
        backend_windows = windows_by_backend.get(architecture, [])
        per_backend[architecture] = BackendStats(
            architecture=architecture,
            shards=len({r.shard for r in records}),
            queries=len(records),
            windows=len(backend_windows),
            mean_batch_size=_mean([w.batch_size for w in backend_windows]),
            mean_latency_layers=_mean([r.latency_layers for r in records]),
            mean_queue_delay_layers=_mean([r.queue_delay_layers for r in records]),
            busy_layers=sum(w.total_layers for w in backend_windows),
            throughput_queries_per_sec=len(records) / seconds,
        )

    latencies = [s.latency_layers for s in served]
    misses, miss_rate = _deadline_misses(served, len(shed))
    return ServiceStats(
        total_queries=len(served),
        makespan_layers=makespan,
        mean_latency_layers=_mean(latencies),
        mean_queue_delay_layers=_mean([s.queue_delay_layers for s in served]),
        bandwidth_queries_per_sec=len(served) / seconds,
        per_tenant=per_tenant,
        per_shard=per_shard,
        per_backend=per_backend,
        p50_latency_layers=_percentile(latencies, 50),
        p95_latency_layers=_percentile(latencies, 95),
        p99_latency_layers=_percentile(latencies, 99),
        offered_queries=len(served) + len(rejected),
        rejected_queries=len(rejected) - len(shed),
        shed_queries=len(shed),
        deadline_misses=misses,
        deadline_miss_rate=miss_rate,
    )


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile with linear interpolation (0 when empty)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = (len(ordered) - 1) * q / 100.0
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    return ordered[low] * (high - rank) + ordered[high] * (rank - low)


def _deadline_misses(
    served: Sequence[ServedQuery], shed_count: int
) -> tuple[int, float]:
    """Deadline misses and miss rate over the SLO-carrying demand.

    A shed request (deadline expired while queued) never finished and is
    counted as a miss alongside served queries that finished late.
    """
    with_deadline = [s for s in served if s.deadline is not None]
    misses = sum(1 for s in with_deadline if s.missed_deadline) + shed_count
    demand = len(with_deadline) + shed_count
    return misses, (misses / demand if demand else 0.0)
