"""Per-tenant / per-shard / per-backend serving statistics.

The serving subsystem (:mod:`repro.service`) records one
:class:`ServedQuery` per completed request and one :class:`WindowRecord`
per executed pipeline window; this module aggregates them into the
latency / queue-depth / utilization / bandwidth summaries that a shared
memory serving many callers is judged by.  Since the service can drive a
heterogeneous fleet (per-shard architecture choice via
:mod:`repro.backends`), every record carries its backend's architecture
label and the summary reports per-architecture aggregates alongside the
per-tenant and per-shard ones.

All times are raw circuit layers on the service clock.  Conversions to
wall-clock treat one raw layer as one full CSWAP layer at the hardware
CLOPS — a conservative clock, since fast layers (1/8 cost) are counted
at full weight.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field


@dataclass(frozen=True)
class ServedQuery:
    """One completed request, as recorded by the serving loop.

    Attributes:
        query_id: identifier of the originating request.
        tenant: requesting tenant (QPU / algorithm id).
        shard: shard that served the query.
        request_time: arrival time (raw layers).
        admit_layer: when the query's pipeline window was admitted.
        start_layer: first raw layer of the query inside its window.
        finish_layer: raw layer at which the query completed.
        fidelity: |<ideal|actual>|^2 of the output register (None for
            timing-only serving).
        architecture: architecture name of the serving backend.
    """

    query_id: int
    tenant: int
    shard: int
    request_time: float
    admit_layer: float
    start_layer: float
    finish_layer: float
    fidelity: float | None = None
    architecture: str = ""

    @property
    def latency_layers(self) -> float:
        """Request-to-finish latency (queueing + service), raw layers."""
        return self.finish_layer - self.request_time

    @property
    def queue_delay_layers(self) -> float:
        """Raw layers the request waited before its window was admitted."""
        return self.admit_layer - self.request_time


@dataclass(frozen=True)
class WindowRecord:
    """One executed pipeline window on one shard.

    Attributes:
        shard: shard the window ran on.
        admit_layer: when the window started.
        batch_size: queries admitted into the window.
        interval: admission interval used inside the window (raw layers;
            0 for architectures that admit a window concurrently).
        total_layers: raw layers until the window fully drained.
        architecture: architecture name of the serving backend.
    """

    shard: int
    admit_layer: float
    batch_size: int
    interval: int
    total_layers: float
    architecture: str = ""


@dataclass(frozen=True)
class TenantStats:
    """Serving quality observed by one tenant."""

    tenant: int
    queries: int
    mean_latency_layers: float
    max_latency_layers: float
    mean_queue_delay_layers: float
    throughput_queries_per_sec: float


@dataclass(frozen=True)
class ShardStats:
    """Load placed on one shard."""

    shard: int
    queries: int
    windows: int
    mean_batch_size: float
    busy_layers: float
    utilization: float
    max_queue_depth: int
    architecture: str = ""


@dataclass(frozen=True)
class BackendStats:
    """Aggregate load and serving quality of one backend architecture.

    In a heterogeneous fleet this is the cross-architecture comparison:
    how many queries each architecture absorbed, at what latency, and how
    long its shards stayed busy.
    """

    architecture: str
    shards: int
    queries: int
    windows: int
    mean_batch_size: float
    mean_latency_layers: float
    mean_queue_delay_layers: float
    busy_layers: float
    throughput_queries_per_sec: float


@dataclass(frozen=True)
class ServiceStats:
    """Aggregate serving report.

    Attributes:
        total_queries: queries served.
        makespan_layers: raw layers from time 0 to the last completion.
        mean_latency_layers: mean request-to-finish latency.
        mean_queue_delay_layers: mean admission delay.
        bandwidth_queries_per_sec: served queries per second at the given
            CLOPS (raw layers counted as full layers).
        per_tenant: per-tenant summaries, keyed by tenant id.
        per_shard: per-shard summaries, keyed by shard index.
        per_backend: per-architecture summaries, keyed by architecture
            name (one entry per distinct backend label).
    """

    total_queries: int
    makespan_layers: float
    mean_latency_layers: float
    mean_queue_delay_layers: float
    bandwidth_queries_per_sec: float
    per_tenant: dict[int, TenantStats] = field(default_factory=dict)
    per_shard: dict[int, ShardStats] = field(default_factory=dict)
    per_backend: dict[str, BackendStats] = field(default_factory=dict)


def summarize_service(
    served: Sequence[ServedQuery],
    windows: Sequence[WindowRecord],
    max_queue_depth: dict[int, int] | None = None,
    clops: float = 1.0e6,
) -> ServiceStats:
    """Aggregate served-query and window records into a :class:`ServiceStats`.

    Args:
        served: one record per completed query.
        windows: one record per executed pipeline window.
        max_queue_depth: deepest per-shard queue observed by the serving
            loop (defaults to 0 for every shard).
        clops: hardware clock in full circuit layers per second.
    """
    if not served:
        raise ValueError("at least one served query is required")
    depths = max_queue_depth or {}
    makespan = max(s.finish_layer for s in served)
    seconds = makespan / clops if makespan > 0 else float("inf")

    by_tenant: dict[int, list[ServedQuery]] = {}
    by_shard: dict[int, list[ServedQuery]] = {}
    by_backend: dict[str, list[ServedQuery]] = {}
    for record in served:
        by_tenant.setdefault(record.tenant, []).append(record)
        by_shard.setdefault(record.shard, []).append(record)
        by_backend.setdefault(record.architecture, []).append(record)

    per_tenant = {
        tenant: TenantStats(
            tenant=tenant,
            queries=len(records),
            mean_latency_layers=_mean([r.latency_layers for r in records]),
            max_latency_layers=max(r.latency_layers for r in records),
            mean_queue_delay_layers=_mean([r.queue_delay_layers for r in records]),
            throughput_queries_per_sec=len(records) / seconds,
        )
        for tenant, records in sorted(by_tenant.items())
    }

    windows_by_shard: dict[int, list[WindowRecord]] = {}
    windows_by_backend: dict[str, list[WindowRecord]] = {}
    for window in windows:
        windows_by_shard.setdefault(window.shard, []).append(window)
        windows_by_backend.setdefault(window.architecture, []).append(window)
    per_shard = {}
    for shard, records in sorted(by_shard.items()):
        shard_windows = windows_by_shard.get(shard, [])
        busy = sum(w.total_layers for w in shard_windows)
        per_shard[shard] = ShardStats(
            shard=shard,
            queries=len(records),
            windows=len(shard_windows),
            mean_batch_size=_mean([w.batch_size for w in shard_windows]),
            busy_layers=busy,
            utilization=min(1.0, busy / makespan) if makespan > 0 else 0.0,
            max_queue_depth=depths.get(shard, 0),
            architecture=records[0].architecture,
        )

    per_backend = {}
    for architecture, records in sorted(by_backend.items()):
        backend_windows = windows_by_backend.get(architecture, [])
        per_backend[architecture] = BackendStats(
            architecture=architecture,
            shards=len({r.shard for r in records}),
            queries=len(records),
            windows=len(backend_windows),
            mean_batch_size=_mean([w.batch_size for w in backend_windows]),
            mean_latency_layers=_mean([r.latency_layers for r in records]),
            mean_queue_delay_layers=_mean([r.queue_delay_layers for r in records]),
            busy_layers=sum(w.total_layers for w in backend_windows),
            throughput_queries_per_sec=len(records) / seconds,
        )

    return ServiceStats(
        total_queries=len(served),
        makespan_layers=makespan,
        mean_latency_layers=_mean([s.latency_layers for s in served]),
        mean_queue_delay_layers=_mean([s.queue_delay_layers for s in served]),
        bandwidth_queries_per_sec=len(served) / seconds,
        per_tenant=per_tenant,
        per_shard=per_shard,
        per_backend=per_backend,
    )


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0
