"""Per-tenant / per-shard / per-backend serving statistics.

The serving subsystem (:mod:`repro.service`) records one
:class:`ServedQuery` per completed request and one :class:`WindowRecord`
per executed pipeline window; this module aggregates them into the
latency / queue-depth / utilization / bandwidth summaries that a shared
memory serving many callers is judged by.  Since the service can drive a
heterogeneous fleet (per-shard architecture choice via
:mod:`repro.backends`), every record carries its backend's architecture
label and the summary reports per-architecture aggregates alongside the
per-tenant and per-shard ones.

All times are raw circuit layers on the service clock.  Conversions to
wall-clock treat one raw layer as one full CSWAP layer at the hardware
CLOPS — a conservative clock, since fast layers (1/8 cost) are counted
at full weight.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass, field


@dataclass(frozen=True)
class ServedQuery:
    """One completed request, as recorded by the serving loop.

    Attributes:
        query_id: identifier of the originating request.
        tenant: requesting tenant (QPU / algorithm id).
        shard: shard that served the query.
        request_time: arrival time (raw layers).
        admit_layer: when the query's pipeline window was admitted.
        start_layer: first raw layer of the query inside its window.
        finish_layer: raw layer at which the query completed.
        fidelity: quality of the slot's output register — the measured
            ``|<ideal|actual>|^2`` on a functional run, the backend's
            analytic prediction on a timing-only run (``None`` only for
            hand-built records); when the engine spent distillation copies
            on the query, the distilled suppression is already applied.
        architecture: architecture name of the serving backend.
        deadline: absolute raw layer the request had to finish by
            (``None`` for best-effort requests).
        predicted_fidelity: the backend's analytic per-slot fidelity
            prediction, after any virtual-distillation boost the engine
            granted; drives the fidelity-SLO accounting.
        min_fidelity: the request's fidelity SLO (``None`` best-effort).
        distillation_copies: parallel copies the engine spent on the query
            (1 = no distillation).
    """

    query_id: int
    tenant: int
    shard: int
    request_time: float
    admit_layer: float
    start_layer: float
    finish_layer: float
    fidelity: float | None = None
    architecture: str = ""
    deadline: float | None = None
    predicted_fidelity: float | None = None
    min_fidelity: float | None = None
    distillation_copies: int = 1

    @classmethod
    def _from_fields(cls, **fields: object) -> ServedQuery:
        """Allocation-lean constructor for the serving hot path.

        A frozen dataclass pays one guarded ``object.__setattr__`` per
        field in ``__init__``; populating the instance dict directly cuts
        the per-record cost to a fraction (pinned faster-path-equal in
        tests).  Callers must pass **every** field — no defaults are
        applied — and get back an instance indistinguishable from the
        normal constructor's (same equality, hash, pickle, ``asdict``).
        """
        record = object.__new__(cls)
        record.__dict__.update(fields)
        return record

    @property
    def latency_layers(self) -> float:
        """Request-to-finish latency (queueing + service), raw layers."""
        return self.finish_layer - self.request_time

    @property
    def queue_delay_layers(self) -> float:
        """Raw layers the request waited before its window was admitted."""
        return self.admit_layer - self.request_time

    @property
    def missed_deadline(self) -> bool:
        """Whether the query finished after its deadline (False without one)."""
        return self.deadline is not None and self.finish_layer > self.deadline

    @property
    def missed_fidelity_slo(self) -> bool:
        """Whether the slot's predicted fidelity fell short of the SLO.

        Falls back to the observed ``fidelity`` when no prediction was
        recorded; False for best-effort requests.
        """
        if self.min_fidelity is None:
            return False
        achieved = (
            self.predicted_fidelity
            if self.predicted_fidelity is not None
            else self.fidelity
        )
        return achieved is not None and achieved < self.min_fidelity


#: Reason codes carried by :class:`RejectedQuery` records.
REJECT_QUEUE_FULL = "queue-full"
REJECT_DEADLINE_EXPIRED = "deadline-expired"
REJECT_FIDELITY = "fidelity-infeasible"


@dataclass(frozen=True)
class RejectedQuery:
    """One request the serving engine refused to serve.

    Attributes:
        query_id: identifier of the rejected request.
        tenant: requesting tenant (QPU / algorithm id).
        shard: shard whose queue the request was headed for.
        time: raw layer at which the rejection happened.
        reason: :data:`REJECT_QUEUE_FULL` (backpressure: the bounded queue
            was full at arrival), :data:`REJECT_DEADLINE_EXPIRED` (the
            request was shed from the queue after its deadline passed) or
            :data:`REJECT_FIDELITY` (no admissible placement could meet
            the request's ``min_fidelity``, even with distillation).
        deadline: the request's deadline, if it carried one.
        min_fidelity: the request's fidelity SLO, if it carried one.
    """

    query_id: int
    tenant: int
    shard: int
    time: float
    reason: str
    deadline: float | None = None
    min_fidelity: float | None = None


@dataclass(frozen=True)
class ScaleEvent:
    """One elastic-fleet transition taken by the autoscaler.

    Attributes:
        time: raw layer of the scale check that triggered the transition.
        action: ``"up"`` (replica added) or ``"down"`` (replica retired).
        shard: index of the shard added or retired.
        active_shards: replicas active *after* the transition.
        trigger_depth: deepest active queue observed at the check.
    """

    time: float
    action: str
    shard: int
    active_shards: int
    trigger_depth: int


@dataclass(frozen=True)
class WindowRecord:
    """One executed pipeline window on one shard.

    Attributes:
        shard: shard the window ran on.
        admit_layer: when the window started.
        batch_size: queries admitted into the window.
        interval: admission interval used inside the window (raw layers;
            0 for architectures that admit a window concurrently).
        total_layers: raw layers until the window fully drained.
        architecture: architecture name of the serving backend.
    """

    shard: int
    admit_layer: float
    batch_size: int
    interval: int
    total_layers: float
    architecture: str = ""

    @classmethod
    def _from_fields(cls, **fields: object) -> WindowRecord:
        """Allocation-lean constructor (see :meth:`ServedQuery._from_fields`);
        callers must pass every field."""
        record = object.__new__(cls)
        record.__dict__.update(fields)
        return record


@dataclass(frozen=True)
class TenantStats:
    """Serving quality observed by one tenant.

    ``deadline_miss_rate`` is computed over the tenant's SLO-carrying
    demand: served queries that had a deadline plus requests shed for an
    expired deadline (queue-full rejections are reported separately and do
    not count as misses).  ``fidelity_slo_miss_rate`` is the analogue for
    fidelity SLOs: served queries carrying ``min_fidelity`` whose predicted
    fidelity fell short, plus requests rejected as fidelity-infeasible (a
    refused request is a guaranteed miss).  ``mean_fidelity`` /
    ``min_fidelity`` summarize the non-``None`` fidelities of the tenant's
    served queries and are ``None`` when every record was fidelity-less
    (hand-built timing-only records).
    """

    tenant: int
    queries: int
    mean_latency_layers: float
    max_latency_layers: float
    mean_queue_delay_layers: float
    throughput_queries_per_sec: float
    p95_latency_layers: float = 0.0
    deadline_misses: int = 0
    deadline_miss_rate: float = 0.0
    mean_fidelity: float | None = None
    min_fidelity: float | None = None
    fidelity_slo_misses: int = 0
    fidelity_slo_miss_rate: float = 0.0


@dataclass(frozen=True)
class ShardStats:
    """Load placed on one shard.

    ``mean_fidelity`` / ``min_fidelity`` / ``fidelity_slo_misses`` cover
    the queries the shard actually served (refusals are accounted at the
    tenant and service level).
    """

    shard: int
    queries: int
    windows: int
    mean_batch_size: float
    busy_layers: float
    utilization: float
    max_queue_depth: int
    architecture: str = ""
    mean_fidelity: float | None = None
    min_fidelity: float | None = None
    fidelity_slo_misses: int = 0


@dataclass(frozen=True)
class BackendStats:
    """Aggregate load and serving quality of one backend architecture.

    In a heterogeneous fleet this is the cross-architecture comparison:
    how many queries each architecture absorbed, at what latency and what
    quality-of-result, and how long its shards stayed busy — with encoded
    replicas (``"Fat-Tree@d3"``) reported under their own label, this is
    where the bare-vs-encoded fidelity gap shows up.
    """

    architecture: str
    shards: int
    queries: int
    windows: int
    mean_batch_size: float
    mean_latency_layers: float
    mean_queue_delay_layers: float
    busy_layers: float
    throughput_queries_per_sec: float
    mean_fidelity: float | None = None
    min_fidelity: float | None = None
    fidelity_slo_misses: int = 0


@dataclass(frozen=True)
class ServiceStats:
    """Aggregate serving report.

    Attributes:
        total_queries: queries served.
        makespan_layers: raw layers from time 0 to the last completion.
        mean_latency_layers: mean request-to-finish latency.
        mean_queue_delay_layers: mean admission delay.
        bandwidth_queries_per_sec: served queries per second at the given
            CLOPS (raw layers counted as full layers).
        per_tenant: per-tenant summaries, keyed by tenant id.
        per_shard: per-shard summaries, keyed by shard index.
        per_backend: per-architecture summaries, keyed by architecture
            name (one entry per distinct backend label).
        p50_latency_layers / p95_latency_layers / p99_latency_layers:
            latency percentiles over all served queries (linear
            interpolation between order statistics).
        offered_queries: total requests offered to the service (served plus
            rejected plus shed).
        rejected_queries: requests refused at arrival (bounded queue full
            or fidelity-infeasible); always ``len(rejected) - shed_queries``
            and therefore never negative.
        shed_queries: requests dropped from a queue after their deadline
            expired.
        fidelity_rejected_queries: the fidelity-infeasible subset of
            ``rejected_queries``.
        deadline_misses: served queries that finished past their deadline,
            plus shed requests (a shed request is a guaranteed miss).
        deadline_miss_rate: ``deadline_misses`` over the SLO-carrying
            demand (served-with-deadline + shed); 0.0 when no request
            carried a deadline.
        mean_fidelity / min_fidelity: mean and worst fidelity over the
            served queries that carried one (``None`` when none did).
        fidelity_slo_misses: served queries whose predicted fidelity fell
            short of their ``min_fidelity``, plus fidelity-infeasible
            rejections (a refused request is a guaranteed miss).
        fidelity_slo_miss_rate: ``fidelity_slo_misses`` over the
            fidelity-SLO-carrying demand; 0.0 when no request carried one.
    """

    total_queries: int
    makespan_layers: float
    mean_latency_layers: float
    mean_queue_delay_layers: float
    bandwidth_queries_per_sec: float
    per_tenant: dict[int, TenantStats] = field(default_factory=dict)
    per_shard: dict[int, ShardStats] = field(default_factory=dict)
    per_backend: dict[str, BackendStats] = field(default_factory=dict)
    p50_latency_layers: float = 0.0
    p95_latency_layers: float = 0.0
    p99_latency_layers: float = 0.0
    offered_queries: int = 0
    rejected_queries: int = 0
    shed_queries: int = 0
    fidelity_rejected_queries: int = 0
    deadline_misses: int = 0
    deadline_miss_rate: float = 0.0
    mean_fidelity: float | None = None
    min_fidelity: float | None = None
    fidelity_slo_misses: int = 0
    fidelity_slo_miss_rate: float = 0.0


def summarize_service(
    served: Sequence[ServedQuery],
    windows: Sequence[WindowRecord],
    max_queue_depth: dict[int, int] | None = None,
    clops: float = 1.0e6,
    rejected: Sequence[RejectedQuery] = (),
) -> ServiceStats:
    """Aggregate served-query and window records into a :class:`ServiceStats`.

    Args:
        served: one record per completed query.
        windows: one record per executed pipeline window.
        max_queue_depth: deepest per-shard queue observed by the serving
            loop (defaults to 0 for every shard).
        clops: hardware clock in full circuit layers per second.
        rejected: requests the engine refused (backpressure or expired
            deadlines), folded into the offered / shed / miss accounting.
    """
    if not served:
        raise ValueError("at least one served query is required")
    depths = max_queue_depth or {}
    makespan = max(s.finish_layer for s in served)
    seconds = makespan / clops if makespan > 0 else float("inf")

    by_tenant: dict[int, list[ServedQuery]] = {}
    by_shard: dict[int, list[ServedQuery]] = {}
    by_backend: dict[str, list[ServedQuery]] = {}
    for record in served:
        by_tenant.setdefault(record.tenant, []).append(record)
        by_shard.setdefault(record.shard, []).append(record)
        by_backend.setdefault(record.architecture, []).append(record)

    shed = [r for r in rejected if r.reason == REJECT_DEADLINE_EXPIRED]
    shed_by_tenant: dict[int, int] = {}
    for record in shed:
        shed_by_tenant[record.tenant] = shed_by_tenant.get(record.tenant, 0) + 1
    fidelity_rejected = [r for r in rejected if r.reason == REJECT_FIDELITY]
    fidelity_rejected_by_tenant: dict[int, int] = {}
    for record in fidelity_rejected:
        fidelity_rejected_by_tenant[record.tenant] = (
            fidelity_rejected_by_tenant.get(record.tenant, 0) + 1
        )

    per_tenant = {}
    # Include tenants whose entire demand was shed or refused: they served
    # nothing but their misses must not vanish from the per-tenant view.
    tenants = set(by_tenant) | set(shed_by_tenant) | set(fidelity_rejected_by_tenant)
    for tenant in sorted(tenants):
        records = by_tenant.get(tenant, [])
        misses, miss_rate = _deadline_misses(records, shed_by_tenant.get(tenant, 0))
        fidelity_mean, fidelity_min = _fidelity_summary(records)
        slo_misses, slo_miss_rate = _fidelity_slo_misses(
            records, fidelity_rejected_by_tenant.get(tenant, 0)
        )
        per_tenant[tenant] = TenantStats(
            tenant=tenant,
            queries=len(records),
            mean_latency_layers=_mean([r.latency_layers for r in records]),
            max_latency_layers=max(
                (r.latency_layers for r in records), default=0.0
            ),
            mean_queue_delay_layers=_mean([r.queue_delay_layers for r in records]),
            throughput_queries_per_sec=len(records) / seconds,
            p95_latency_layers=_percentile([r.latency_layers for r in records], 95),
            deadline_misses=misses,
            deadline_miss_rate=miss_rate,
            mean_fidelity=fidelity_mean,
            min_fidelity=fidelity_min,
            fidelity_slo_misses=slo_misses,
            fidelity_slo_miss_rate=slo_miss_rate,
        )

    windows_by_shard: dict[int, list[WindowRecord]] = {}
    windows_by_backend: dict[str, list[WindowRecord]] = {}
    for window in windows:
        windows_by_shard.setdefault(window.shard, []).append(window)
        windows_by_backend.setdefault(window.architecture, []).append(window)
    per_shard = {}
    for shard, records in sorted(by_shard.items()):
        shard_windows = windows_by_shard.get(shard, [])
        busy = sum(w.total_layers for w in shard_windows)
        fidelity_mean, fidelity_min = _fidelity_summary(records)
        per_shard[shard] = ShardStats(
            shard=shard,
            queries=len(records),
            windows=len(shard_windows),
            mean_batch_size=_mean([w.batch_size for w in shard_windows]),
            busy_layers=busy,
            utilization=min(1.0, busy / makespan) if makespan > 0 else 0.0,
            max_queue_depth=depths.get(shard, 0),
            architecture=records[0].architecture,
            mean_fidelity=fidelity_mean,
            min_fidelity=fidelity_min,
            fidelity_slo_misses=sum(1 for r in records if r.missed_fidelity_slo),
        )

    per_backend = {}
    for architecture, records in sorted(by_backend.items()):
        backend_windows = windows_by_backend.get(architecture, [])
        fidelity_mean, fidelity_min = _fidelity_summary(records)
        per_backend[architecture] = BackendStats(
            architecture=architecture,
            shards=len({r.shard for r in records}),
            queries=len(records),
            windows=len(backend_windows),
            mean_batch_size=_mean([w.batch_size for w in backend_windows]),
            mean_latency_layers=_mean([r.latency_layers for r in records]),
            mean_queue_delay_layers=_mean([r.queue_delay_layers for r in records]),
            busy_layers=sum(w.total_layers for w in backend_windows),
            throughput_queries_per_sec=len(records) / seconds,
            mean_fidelity=fidelity_mean,
            min_fidelity=fidelity_min,
            fidelity_slo_misses=sum(1 for r in records if r.missed_fidelity_slo),
        )

    latencies = [s.latency_layers for s in served]
    misses, miss_rate = _deadline_misses(served, len(shed))
    fidelity_mean, fidelity_min = _fidelity_summary(served)
    slo_misses, slo_miss_rate = _fidelity_slo_misses(served, len(fidelity_rejected))
    return ServiceStats(
        total_queries=len(served),
        makespan_layers=makespan,
        mean_latency_layers=_mean(latencies),
        mean_queue_delay_layers=_mean([s.queue_delay_layers for s in served]),
        bandwidth_queries_per_sec=len(served) / seconds,
        per_tenant=per_tenant,
        per_shard=per_shard,
        per_backend=per_backend,
        p50_latency_layers=_percentile(latencies, 50),
        p95_latency_layers=_percentile(latencies, 95),
        p99_latency_layers=_percentile(latencies, 99),
        offered_queries=len(served) + len(rejected),
        rejected_queries=len(rejected) - len(shed),
        shed_queries=len(shed),
        fidelity_rejected_queries=len(fidelity_rejected),
        deadline_misses=misses,
        deadline_miss_rate=miss_rate,
        mean_fidelity=fidelity_mean,
        min_fidelity=fidelity_min,
        fidelity_slo_misses=slo_misses,
        fidelity_slo_miss_rate=slo_miss_rate,
    )


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile with linear interpolation (0 when empty)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = (len(ordered) - 1) * q / 100.0
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    return ordered[low] * (high - rank) + ordered[high] * (rank - low)


def _deadline_misses(
    served: Sequence[ServedQuery], shed_count: int
) -> tuple[int, float]:
    """Deadline misses and miss rate over the SLO-carrying demand.

    A shed request (deadline expired while queued) never finished and is
    counted as a miss alongside served queries that finished late.
    """
    with_deadline = [s for s in served if s.deadline is not None]
    misses = sum(1 for s in with_deadline if s.missed_deadline) + shed_count
    demand = len(with_deadline) + shed_count
    return misses, (misses / demand if demand else 0.0)


def _fidelity_summary(
    served: Sequence[ServedQuery],
) -> tuple[float | None, float | None]:
    """(mean, min) over the records carrying a fidelity; (None, None) when
    every record is fidelity-less (hand-built timing-only records)."""
    values = [s.fidelity for s in served if s.fidelity is not None]
    if not values:
        return None, None
    return _mean(values), min(values)


def _fidelity_slo_misses(
    served: Sequence[ServedQuery], fidelity_rejected_count: int
) -> tuple[int, float]:
    """Fidelity-SLO misses and miss rate over the SLO-carrying demand.

    A fidelity-infeasible rejection never produced a usable result and is
    counted as a miss alongside served slots whose prediction fell short.
    """
    with_slo = [s for s in served if s.min_fidelity is not None]
    misses = (
        sum(1 for s in with_slo if s.missed_fidelity_slo) + fidelity_rejected_count
    )
    demand = len(with_slo) + fidelity_rejected_count
    return misses, (misses / demand if demand else 0.0)
