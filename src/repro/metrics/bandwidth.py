"""QRAM bandwidth and memory access rate (Table 2, Fig. 8).

Bandwidth is the rate at which data qubits are written into bus qubits
(qubits/second); it equals ``bus_width / amortized_query_latency`` at the
hardware clock speed (CLOPS).  The paper's numbers use a 1 us CSWAP
(CLOPS = 1e6) and bus width 1.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.baselines.registry import architecture_names, build_architecture
from repro.bucket_brigade.tree import validate_capacity
from repro.hardware.parameters import DEFAULT_PARAMETERS, HardwareParameters


def bandwidth_qubits_per_second(
    name: str,
    capacity: int,
    parameters: HardwareParameters = DEFAULT_PARAMETERS,
    bus_width: int = 1,
) -> float:
    """Bandwidth of one architecture at one capacity (Table 2 / Fig. 8)."""
    qram = build_architecture(name, capacity)
    validate_capacity(capacity)
    if hasattr(qram, "bandwidth"):
        return bus_width * qram.bandwidth(parameters.clops)
    amortized = qram.amortized_query_latency()
    return bus_width * parameters.clops / amortized


def bandwidth_scaling(
    capacities: Sequence[int],
    architectures: Sequence[str] | None = None,
    parameters: HardwareParameters = DEFAULT_PARAMETERS,
) -> dict[str, list[float]]:
    """Bandwidth of every architecture across capacities (Fig. 8 series)."""
    names = list(architectures) if architectures else architecture_names()
    return {
        name: [bandwidth_qubits_per_second(name, c, parameters) for c in capacities]
        for name in names
    }


def memory_access_rate(
    name: str,
    capacity: int,
    parameters: HardwareParameters = DEFAULT_PARAMETERS,
) -> float:
    """Rate at which classical memory cells are read (cells/second).

    Every query reads all ``N`` cells in parallel during data retrieval, so
    the duty rate is ``bandwidth * N`` (Sec. 7.2).
    """
    return bandwidth_qubits_per_second(name, capacity, parameters) * capacity
